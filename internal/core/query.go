// Package core implements the Iso-Map protocol — the paper's primary
// contribution (Sec. 3): contour-mapping queries, isoline-node
// self-detection, local linear-regression gradient estimation, report
// generation, and in-network report filtering along the routing tree.
//
// The sink-side reconstruction of the contour map from the collected
// reports lives in internal/contour.
package core

import (
	"fmt"

	"isomap/internal/field"
)

// Message sizes in bytes. Per the paper's evaluation setup, "each parameter
// in a report uses two bytes, such as the sensory value, position,
// gradient, etc."
const (
	// QueryBytes covers the four query parameters (vL, vH, T, epsilon).
	QueryBytes = 8
	// ReportBytes covers an isoline report <v, p, d>: isolevel, position
	// x/y, gradient x/y — five parameters.
	ReportBytes = 10
	// ProbeBytes is the local neighborhood probe an isoline node
	// broadcasts to collect <value, position> tuples for regression.
	ProbeBytes = 2
	// ProbeReplyBytes is a neighbor's <value, position> reply.
	ProbeReplyBytes = 6
	// RetireBytes is a delta-mode retirement record <v, p>: isolevel plus
	// position identify the cached report being withdrawn — three
	// parameters, no gradient.
	RetireBytes = 6
)

// Abstract arithmetic-operation charges, the unit of the computational
// intensity metric (Fig. 15). The constants approximate instruction counts
// of the respective inner loops.
const (
	// OpsQueryParse is charged to every node that processes the query.
	OpsQueryParse = 4
	// OpsDetectPerLevel is the per-isolevel border-region check.
	OpsDetectPerLevel = 3
	// OpsDetectPerNeighbor is the condition-2 straddle check per neighbor.
	OpsDetectPerNeighbor = 4
	// OpsRegressionPerNeighbor accumulates one neighbor's terms of the
	// normal-equation sums (Eq. 2).
	OpsRegressionPerNeighbor = 15
	// OpsRegressionSolve solves the 3x3 linear system once per isoline
	// node (Eq. 2-3).
	OpsRegressionSolve = 60
	// OpsFilterPerComparison evaluates s_a and s_d for one report pair at
	// an intermediate node (Sec. 3.5).
	OpsFilterPerComparison = 12
)

// DefaultEpsilonFraction is the paper's default border-region width: 5% of
// the isolevel granularity T (Sec. 3.2).
const DefaultEpsilonFraction = 0.05

// Query is a contour-mapping query disseminated by the sink (Sec. 3.2):
// the data space [Levels.Low, Levels.High], granularity Levels.Step, and
// the border-region tolerance Epsilon for isoline-node selection.
//
// HopScope widens the neighborhood an isoline node probes for its gradient
// regression: Sec. 3.3 notes "the query scope can be adjusted within k-hop
// neighbors for different sensor deployment densities or to achieve
// different levels of estimation precision". Isoline-node detection
// (Definition 3.1) always uses the 1-hop neighborhood.
type Query struct {
	Levels  field.Levels
	Epsilon float64
	// HopScope is the regression neighborhood radius in hops; values
	// below 1 are treated as 1.
	HopScope int
}

// NewQuery builds a query with the default Epsilon of 0.05*T and a 1-hop
// regression scope.
func NewQuery(levels field.Levels) (Query, error) {
	return NewQueryEpsilon(levels, DefaultEpsilonFraction*levels.Step)
}

// NewQueryEpsilon builds a query with an explicit border tolerance,
// validating the level scheme.
func NewQueryEpsilon(levels field.Levels, epsilon float64) (Query, error) {
	if levels.Step <= 0 {
		return Query{}, fmt.Errorf("core: query granularity must be positive, got %g", levels.Step)
	}
	if levels.High < levels.Low {
		return Query{}, fmt.Errorf("core: query range [%g, %g] inverted", levels.Low, levels.High)
	}
	if epsilon <= 0 {
		return Query{}, fmt.Errorf("core: query epsilon must be positive, got %g", epsilon)
	}
	if epsilon >= levels.Step/2 {
		return Query{}, fmt.Errorf("core: epsilon %g must be below half the granularity %g", epsilon, levels.Step)
	}
	return Query{Levels: levels, Epsilon: epsilon, HopScope: 1}, nil
}

// scope returns the effective regression hop scope.
func (q Query) scope() int {
	if q.HopScope < 1 {
		return 1
	}
	return q.HopScope
}

// CandidateLevels returns the isolevels whose border region [lambda-eps,
// lambda+eps] contains value v. With epsilon < T/2 there is at most one.
func (q Query) CandidateLevels(v float64) []int {
	var out []int
	for i, lambda := range q.Levels.Values() {
		if v >= lambda-q.Epsilon && v <= lambda+q.Epsilon {
			out = append(out, i)
		}
	}
	return out
}
