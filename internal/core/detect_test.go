package core

import (
	"math"
	"testing"

	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/metrics"
	"isomap/internal/network"
)

func defaultSetup(t *testing.T, n int, seed int64) (*network.Network, field.Field, Query) {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployUniform(n, f, 1.5, seed)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sense(f)
	q, err := NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	return nw, f, q
}

func TestDetectIsolineNodesNonEmpty(t *testing.T) {
	nw, _, q := defaultSetup(t, 2500, 1)
	c := metrics.NewCounters(nw.Len())
	reports := DetectIsolineNodes(nw, q, c)
	if len(reports) == 0 {
		t.Fatal("no isoline nodes detected on default setup")
	}
	if c.GeneratedReports != int64(len(reports)) {
		t.Errorf("GeneratedReports = %d, want %d", c.GeneratedReports, len(reports))
	}
}

func TestDetectedNodesSatisfyDefinition(t *testing.T) {
	nw, _, q := defaultSetup(t, 2500, 1)
	reports := DetectIsolineNodes(nw, q, nil)
	for _, r := range reports {
		node := nw.Node(r.Source)
		// Condition 1: value in border region.
		if math.Abs(node.Value-r.Level) > q.Epsilon+1e-12 {
			t.Fatalf("node %d value %v outside border region of %v", r.Source, node.Value, r.Level)
		}
		// Condition 2: some alive neighbor straddles the level.
		ok := false
		for _, nb := range nw.AliveNeighbors(r.Source) {
			vq := nw.Node(nb).Value
			if (node.Value < r.Level && r.Level < vq) || (vq < r.Level && r.Level < node.Value) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("node %d fails condition 2 for level %v", r.Source, r.Level)
		}
		// Report fields are coherent.
		if r.Pos != node.Pos {
			t.Fatalf("report position %v != node position %v", r.Pos, node.Pos)
		}
		if r.Grad.Norm() <= geom.Eps {
			t.Fatalf("report %v has zero gradient", r)
		}
	}
}

func TestDetectSkipsFailedNodes(t *testing.T) {
	nw, f, q := defaultSetup(t, 2500, 1)
	base := DetectIsolineNodes(nw, q, nil)
	if len(base) == 0 {
		t.Fatal("no base reports")
	}
	// Fail one reporting node; it must disappear from the reports.
	victim := base[0].Source
	nw.Node(victim).Failed = true
	nw.Sense(f)
	after := DetectIsolineNodes(nw, q, nil)
	for _, r := range after {
		if r.Source == victim {
			t.Fatalf("failed node %d still reported", victim)
		}
	}
}

func TestDetectCountScalesLikeSqrtN(t *testing.T) {
	// Theorem 4.1: isoline nodes = O(sqrt n). Quadrupling n (at fixed
	// field => 2x density) should roughly double isoline nodes if the
	// field were rescaled; here the field is fixed so the stripe width
	// (radio range) is fixed: count scales linearly with density for
	// fixed area... The paper normalizes density=1 and grows the field.
	// Emulate that: same density, different field sizes.
	for _, tc := range []struct {
		side float64
		n    int
	}{{25, 625}, {50, 2500}} {
		cfg := field.DefaultSeabedConfig()
		cfg.Width, cfg.Height = tc.side, tc.side
		f := field.NewSeabed(cfg)
		nw, err := network.DeployUniform(tc.n, f, 1.5, 3)
		if err != nil {
			t.Fatal(err)
		}
		nw.Sense(f)
		q, err := NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
		if err != nil {
			t.Fatal(err)
		}
		reports := DetectIsolineNodes(nw, q, nil)
		// Crude O(sqrt n) sanity: reports should be well below n.
		if len(reports) > tc.n/4 {
			t.Errorf("side %v: %d reports for %d nodes — not sparse", tc.side, len(reports), tc.n)
		}
	}
}

func TestGradientApproximatesTrueNormal(t *testing.T) {
	// Fig. 7: at average degree ~7+, the angle between the regressed
	// gradient and the true field gradient is small (paper: within ~5
	// degrees at degree >= 7; allow slack for our surface).
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployUniform(2500, f, 2.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sense(f)
	q, err := NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	reports := DetectIsolineNodes(nw, q, nil)
	if len(reports) < 10 {
		t.Fatalf("too few reports (%d) for statistics", len(reports))
	}
	var sum float64
	for _, r := range reports {
		trueDown := f.GradientAt(r.Pos.X, r.Pos.Y).Neg()
		sum += geom.Degrees(r.Grad.AngleBetween(trueDown))
	}
	mean := sum / float64(len(reports))
	if mean > 15 {
		t.Errorf("mean gradient direction error = %.1f degrees, want small", mean)
	}
}

func TestDetectChargesLocalTraffic(t *testing.T) {
	nw, _, q := defaultSetup(t, 2500, 1)
	c := metrics.NewCounters(nw.Len())
	reports := DetectIsolineNodes(nw, q, c)
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	// Every reporting node must have transmitted its neighborhood probe.
	for _, r := range reports {
		if c.TxBytes(r.Source) < ProbeBytes {
			t.Fatalf("isoline node %d has no probe traffic", r.Source)
		}
		if c.Ops(r.Source) == 0 {
			t.Fatalf("isoline node %d has no compute charge", r.Source)
		}
	}
}
