package core

import (
	"testing"

	"isomap/internal/field"
)

func TestNewQueryDefaults(t *testing.T) {
	q, err := NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	if q.Epsilon != 0.1 {
		t.Errorf("Epsilon = %v, want 0.1 (5%% of T)", q.Epsilon)
	}
}

func TestNewQueryValidation(t *testing.T) {
	tests := []struct {
		name    string
		levels  field.Levels
		eps     float64
		wantErr bool
	}{
		{"ok", field.Levels{Low: 0, High: 10, Step: 2}, 0.1, false},
		{"zero step", field.Levels{Low: 0, High: 10, Step: 0}, 0.1, true},
		{"inverted", field.Levels{Low: 10, High: 0, Step: 2}, 0.1, true},
		{"zero eps", field.Levels{Low: 0, High: 10, Step: 2}, 0, true},
		{"eps too wide", field.Levels{Low: 0, High: 10, Step: 2}, 1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewQueryEpsilon(tt.levels, tt.eps)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestCandidateLevels(t *testing.T) {
	q, err := NewQueryEpsilon(field.Levels{Low: 6, High: 12, Step: 2}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		v    float64
		want []int
	}{
		{6.0, []int{0}},
		{6.05, []int{0}},
		{6.1, []int{0}},
		{6.2, nil},
		{7.95, []int{1}},
		{12.0, []int{3}},
		{12.2, nil},
		{5.85, nil},
	}
	for _, tt := range tests {
		got := q.CandidateLevels(tt.v)
		if len(got) != len(tt.want) {
			t.Errorf("CandidateLevels(%v) = %v, want %v", tt.v, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("CandidateLevels(%v) = %v, want %v", tt.v, got, tt.want)
			}
		}
	}
}

func TestCandidateLevelsAtMostOneWithNarrowEps(t *testing.T) {
	q, err := NewQuery(field.Levels{Low: 0, High: 20, Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := -1.0; v <= 21; v += 0.013 {
		if got := q.CandidateLevels(v); len(got) > 1 {
			t.Fatalf("CandidateLevels(%v) matched %d levels", v, len(got))
		}
	}
}
