// Package schedule analyzes the report-collection epoch under the
// TAG-style level-synchronized schedule the paper assumes (Sec. 3.1:
// "Nodes in different levels forward packets during different time
// slots"). Given the per-node forwarding volumes of a protocol round it
// derives the dimensions the structural simulation cannot: collection
// latency, per-node buffering requirements, and the idle-listening energy
// of the epoch's radio duty cycle.
//
// The epoch model: collection proceeds from the deepest tree level toward
// the sink, one slot per level. In the slot of level L every level-L node
// transmits its (already filtered) buffer once; its parent listens. A
// slot must be long enough for the busiest node of that level to drain
// its buffer, so the slot duration is set by the maximum per-node bytes
// at that level. A report generated at depth d therefore arrives after
// the d slots closest to the sink, and the epoch completes in MaxLevel
// slots.
package schedule

import (
	"fmt"

	"isomap/internal/core"
	"isomap/internal/energy"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// Epoch is the derived timing and buffering profile of one collection
// round.
type Epoch struct {
	// Slots is the number of level slots in the epoch (the tree depth).
	Slots int
	// SlotSeconds holds each slot's duration: SlotSeconds[i] is the slot
	// in which level (Slots-i) transmits, i.e. slots are ordered in time.
	SlotSeconds []float64
	// TotalSeconds is the end-to-end collection latency of the epoch.
	TotalSeconds float64
	// MaxQueueReports is the largest per-node buffer over the epoch, in
	// reports — the memory a mote must provision.
	MaxQueueReports int
	// MaxQueueNode identifies the bottleneck node.
	MaxQueueNode network.NodeID
	// IdleListenJoulesPerNode is the mean idle-listening energy spent by
	// nodes keeping their radio on during their children's slot beyond
	// the bytes actually received.
	IdleListenJoulesPerNode float64
}

// PlanEpoch derives the epoch profile for a delivery over the tree, with
// each report occupying reportBytes on the wire.
func PlanEpoch(tree *routing.Tree, d core.Delivery, reportBytes int) (*Epoch, error) {
	if tree == nil {
		return nil, fmt.Errorf("schedule: nil routing tree")
	}
	if reportBytes <= 0 {
		return nil, fmt.Errorf("schedule: report size must be positive, got %d", reportBytes)
	}
	depth := tree.MaxLevel()
	ep := &Epoch{Slots: depth}
	if depth == 0 {
		return ep, nil
	}

	// Per-level maximum transmission volume sets each slot's length.
	maxBytesAtLevel := make([]int, depth+1)
	for id, count := range d.ForwardedPerNode {
		l := tree.Level(id)
		if l <= 0 {
			continue
		}
		if b := count * reportBytes; b > maxBytesAtLevel[l] {
			maxBytesAtLevel[l] = b
		}
		if count > ep.MaxQueueReports {
			ep.MaxQueueReports = count
			ep.MaxQueueNode = id
		}
	}

	// Slots run deepest level first.
	ep.SlotSeconds = make([]float64, 0, depth)
	for l := depth; l >= 1; l-- {
		sec := float64(maxBytesAtLevel[l]) * 8 / energy.RadioBitsPerSecond
		ep.SlotSeconds = append(ep.SlotSeconds, sec)
		ep.TotalSeconds += sec
	}

	ep.IdleListenJoulesPerNode = idleListening(tree, d, reportBytes, maxBytesAtLevel)
	return ep, nil
}

// idleListening computes the mean per-node energy wasted listening during
// the children's slot beyond the bytes actually received: a parent keeps
// its receiver on for the whole slot of the level below it, but only part
// of that slot carries its own children's bytes.
func idleListening(tree *routing.Tree, d core.Delivery, reportBytes int, maxBytesAtLevel []int) float64 {
	n := tree.Network().Len()
	if n == 0 {
		return 0
	}
	var total float64
	for i := 0; i < n; i++ {
		id := network.NodeID(i)
		if !tree.Reachable(id) || len(tree.Children(id)) == 0 {
			continue
		}
		childLevel := tree.Level(id) + 1
		if childLevel >= len(maxBytesAtLevel) && childLevel != len(maxBytesAtLevel) {
			continue
		}
		slotBytes := 0
		if childLevel < len(maxBytesAtLevel) {
			slotBytes = maxBytesAtLevel[childLevel]
		}
		received := 0
		for _, ch := range tree.Children(id) {
			received += d.ForwardedPerNode[ch] * reportBytes
		}
		idleBytes := slotBytes - received
		if idleBytes <= 0 {
			continue
		}
		// Idle listening draws receive power for the unused slot time.
		total += float64(idleBytes) * 8 / energy.RadioBitsPerSecond * energy.RxPowerWatts
	}
	return total / float64(n)
}

// LatencyOf returns the collection latency of a report generated at the
// given source: the sum of the slot durations it traverses (its own
// level's slot and every closer one). Unreachable sources return -1.
func (ep *Epoch) LatencyOf(tree *routing.Tree, source network.NodeID) float64 {
	l := tree.Level(source)
	if l < 0 {
		return -1
	}
	if l == 0 || ep.Slots == 0 {
		return 0
	}
	if l > ep.Slots {
		l = ep.Slots
	}
	// SlotSeconds[0] serves level Slots ... SlotSeconds[Slots-1] serves
	// level 1; a level-l report rides the last l slots.
	var lat float64
	for i := ep.Slots - l; i < ep.Slots; i++ {
		lat += ep.SlotSeconds[i]
	}
	return lat
}
