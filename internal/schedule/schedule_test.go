package schedule

import (
	"testing"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/network"
	"isomap/internal/routing"
)

func runRound(t *testing.T, n int, fc core.FilterConfig) (*routing.Tree, core.Delivery) {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployUniform(n, f, 1.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sense(f)
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	generated := core.DetectIsolineNodes(nw, q, nil)
	d := core.DeliverReportsDetailed(tree, generated, fc, nil)
	return tree, d
}

func TestPlanEpochBasics(t *testing.T) {
	tree, d := runRound(t, 2500, core.DefaultFilterConfig())
	ep, err := PlanEpoch(tree, d, core.ReportBytes)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Slots != tree.MaxLevel() {
		t.Errorf("Slots = %d, want %d", ep.Slots, tree.MaxLevel())
	}
	if len(ep.SlotSeconds) != ep.Slots {
		t.Errorf("len(SlotSeconds) = %d", len(ep.SlotSeconds))
	}
	var sum float64
	for _, s := range ep.SlotSeconds {
		if s < 0 {
			t.Fatalf("negative slot duration %v", s)
		}
		sum += s
	}
	if sum != ep.TotalSeconds {
		t.Errorf("TotalSeconds %v != slot sum %v", ep.TotalSeconds, sum)
	}
	if ep.TotalSeconds <= 0 {
		t.Error("epoch with reports should take time")
	}
	if ep.MaxQueueReports <= 0 {
		t.Error("some node must buffer reports")
	}
	if ep.IdleListenJoulesPerNode < 0 {
		t.Error("negative idle-listening energy")
	}
}

func TestPlanEpochErrors(t *testing.T) {
	if _, err := PlanEpoch(nil, core.Delivery{}, 10); err == nil {
		t.Error("want error for nil tree")
	}
	tree, d := runRound(t, 100, core.DefaultFilterConfig())
	if _, err := PlanEpoch(tree, d, 0); err == nil {
		t.Error("want error for zero report size")
	}
}

func TestFilteringShortensEpoch(t *testing.T) {
	tree, dAll := runRound(t, 2500, core.FilterConfig{Enabled: false})
	_, dFiltered := runRound(t, 2500, core.DefaultFilterConfig())
	epAll, err := PlanEpoch(tree, dAll, core.ReportBytes)
	if err != nil {
		t.Fatal(err)
	}
	epFiltered, err := PlanEpoch(tree, dFiltered, core.ReportBytes)
	if err != nil {
		t.Fatal(err)
	}
	if epFiltered.TotalSeconds >= epAll.TotalSeconds {
		t.Errorf("filtering did not shorten epoch: %v vs %v",
			epFiltered.TotalSeconds, epAll.TotalSeconds)
	}
	if epFiltered.MaxQueueReports >= epAll.MaxQueueReports {
		t.Errorf("filtering did not shrink buffers: %d vs %d",
			epFiltered.MaxQueueReports, epAll.MaxQueueReports)
	}
}

func TestLatencyOf(t *testing.T) {
	tree, d := runRound(t, 2500, core.DefaultFilterConfig())
	ep, err := PlanEpoch(tree, d, core.ReportBytes)
	if err != nil {
		t.Fatal(err)
	}
	// The sink has zero latency.
	if got := ep.LatencyOf(tree, tree.Root()); got != 0 {
		t.Errorf("sink latency = %v", got)
	}
	// Latency grows with depth and never exceeds the epoch.
	var prevLat float64
	for l := 1; l <= ep.Slots; l++ {
		// Find a node at level l.
		var node network.NodeID = -1
		for i := 0; i < tree.Network().Len(); i++ {
			if tree.Level(network.NodeID(i)) == l {
				node = network.NodeID(i)
				break
			}
		}
		if node < 0 {
			continue
		}
		lat := ep.LatencyOf(tree, node)
		if lat < prevLat {
			t.Fatalf("latency decreased with depth at level %d: %v < %v", l, lat, prevLat)
		}
		if lat > ep.TotalSeconds+1e-12 {
			t.Fatalf("latency %v exceeds epoch %v", lat, ep.TotalSeconds)
		}
		prevLat = lat
	}
	// Unreachable source.
	if got := ep.LatencyOf(tree, network.NodeID(-1)); got != -1 {
		t.Errorf("unreachable latency = %v, want -1", got)
	}
}

func TestEmptyDeliveryZeroEpoch(t *testing.T) {
	tree, _ := runRound(t, 100, core.DefaultFilterConfig())
	ep, err := PlanEpoch(tree, core.Delivery{}, core.ReportBytes)
	if err != nil {
		t.Fatal(err)
	}
	if ep.TotalSeconds != 0 {
		t.Errorf("empty delivery epoch = %v seconds", ep.TotalSeconds)
	}
	if ep.MaxQueueReports != 0 {
		t.Errorf("empty delivery buffers = %d", ep.MaxQueueReports)
	}
}
