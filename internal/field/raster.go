package field

// Raster is a row-major grid of contour-region indices over the field
// bounds; cell (r, c) covers the (r, c)-th of Rows x Cols equal rectangles.
type Raster struct {
	Rows  int
	Cols  int
	Cells [][]int
}

// NewRaster allocates a zeroed raster.
func NewRaster(rows, cols int) *Raster {
	cells := make([][]int, rows)
	for r := range cells {
		cells[r] = make([]int, cols)
	}
	return &Raster{Rows: rows, Cols: cols, Cells: cells}
}

// ClassifyRaster rasterizes the ground-truth contour map: every cell gets
// the contour-region index of the field value at its center, under the
// query's isolevel scheme. This is the reference against which mapping
// accuracy (Fig. 11) is measured.
func ClassifyRaster(f Field, levels Levels, rows, cols int) *Raster {
	x0, y0, x1, y1 := f.Bounds()
	ra := NewRaster(rows, cols)
	for r := 0; r < rows; r++ {
		y := y0 + (y1-y0)*(float64(r)+0.5)/float64(rows)
		for c := 0; c < cols; c++ {
			x := x0 + (x1-x0)*(float64(c)+0.5)/float64(cols)
			ra.Cells[r][c] = levels.Classify(f.Value(x, y))
		}
	}
	return ra
}

// CellCenter returns the field coordinates of the center of cell (r, c)
// given the field bounds.
func (ra *Raster) CellCenter(f Field, r, c int) (x, y float64) {
	x0, y0, x1, y1 := f.Bounds()
	x = x0 + (x1-x0)*(float64(c)+0.5)/float64(ra.Cols)
	y = y0 + (y1-y0)*(float64(r)+0.5)/float64(ra.Rows)
	return x, y
}

// Agreement returns the fraction of cells on which the two rasters agree —
// the paper's "mapping accuracy: ratio of accurately mapped area to the
// whole area". It returns 0 when shapes differ.
func Agreement(a, b *Raster) float64 {
	if a == nil || b == nil || a.Rows != b.Rows || a.Cols != b.Cols || a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	match := 0
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			if a.Cells[r][c] == b.Cells[r][c] {
				match++
			}
		}
	}
	return float64(match) / float64(a.Rows*a.Cols)
}
