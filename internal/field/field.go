// Package field provides the scalar-field substrate for the Iso-Map
// reproduction: the sensed attribute distribution over the surveillance
// area, ground-truth gradients and isolines, and the isolevel scheme used
// by contour queries.
//
// The paper evaluates against a sonar trace of underwater depth in
// Huanghua Harbor. That trace is proprietary, so this package substitutes
// a deterministic synthetic seabed (see Seabed) with the same qualitative
// structure: a smooth surface with a handful of closed, "well behaved"
// contour regions (Definition 4.1 of the paper). GridField additionally
// loads externally supplied traces from a plain-text grid.
package field

import (
	"math"

	"isomap/internal/geom"
)

// Field is a scalar attribute distribution over a rectangular area.
type Field interface {
	// Value returns the attribute value at (x, y). Outside the bounds the
	// value is extrapolated by clamping to the boundary.
	Value(x, y float64) float64
	// Bounds returns the rectangle [x0,x1] x [y0,y1] covered by the field.
	Bounds() (x0, y0, x1, y1 float64)
}

// GradientField is a Field that can report its exact spatial gradient.
type GradientField interface {
	Field
	// GradientAt returns the gradient vector (df/dx, df/dy) at (x, y).
	GradientAt(x, y float64) geom.Vec
}

// NumericGradient estimates the gradient of any field by central
// differences with step h. It is the ground-truth fallback for fields
// without an analytic gradient.
func NumericGradient(f Field, x, y, h float64) geom.Vec {
	return geom.Vec{
		X: (f.Value(x+h, y) - f.Value(x-h, y)) / (2 * h),
		Y: (f.Value(x, y+h) - f.Value(x, y-h)) / (2 * h),
	}
}

// GradientAt returns the exact gradient when f implements GradientField and
// a central-difference estimate otherwise.
func GradientAt(f Field, x, y float64) geom.Vec {
	if g, ok := f.(GradientField); ok {
		return g.GradientAt(x, y)
	}
	return NumericGradient(f, x, y, 1e-4)
}

// BoundsRect returns the field bounds as a geometry polygon.
func BoundsRect(f Field) geom.Polygon {
	x0, y0, x1, y1 := f.Bounds()
	return geom.Rect(x0, y0, x1, y1)
}

// Levels describes the isolevel scheme of a contour query: the data space
// [Low, High] and granularity Step, yielding isolevels Low, Low+Step, ...
// up to High (Sec. 3.2).
type Levels struct {
	Low  float64
	High float64
	Step float64
}

// Values returns the isolevels lambda_i = Low + i*Step within [Low, High].
func (l Levels) Values() []float64 {
	if l.Step <= 0 || l.High < l.Low {
		return nil
	}
	var out []float64
	for v := l.Low; v <= l.High+geom.Eps; v += l.Step {
		out = append(out, v)
	}
	return out
}

// Count returns the number of isolevels.
func (l Levels) Count() int { return len(l.Values()) }

// Classify maps an attribute value to its contour-region index: the number
// of isolevels lambda_i with lambda_i <= v. Index 0 is the region below the
// lowest isolevel.
func (l Levels) Classify(v float64) int {
	if l.Step <= 0 {
		return 0
	}
	if v < l.Low {
		return 0
	}
	idx := int(math.Floor((v-l.Low)/l.Step)) + 1
	if max := l.Count(); idx > max {
		idx = max
	}
	return idx
}

// Nearest returns the isolevel closest to v and its index, or (0, -1) when
// the scheme is empty.
func (l Levels) Nearest(v float64) (float64, int) {
	vals := l.Values()
	if len(vals) == 0 {
		return 0, -1
	}
	best, bestIdx := vals[0], 0
	for i, lv := range vals[1:] {
		if math.Abs(lv-v) < math.Abs(best-v) {
			best, bestIdx = lv, i+1
		}
	}
	return best, bestIdx
}
