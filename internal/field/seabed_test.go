package field

import (
	"testing"
)

func TestSeabedDeterministic(t *testing.T) {
	a := NewSeabed(DefaultSeabedConfig())
	b := NewSeabed(DefaultSeabedConfig())
	for _, p := range [][2]float64{{0, 0}, {25, 25}, {49, 1}, {13.7, 42.2}} {
		if a.Value(p[0], p[1]) != b.Value(p[0], p[1]) {
			t.Fatalf("same config differs at %v", p)
		}
	}
}

func TestSeabedSeedChangesSurface(t *testing.T) {
	cfg := DefaultSeabedConfig()
	a := NewSeabed(cfg)
	cfg.Seed++
	b := NewSeabed(cfg)
	same := true
	for _, p := range [][2]float64{{10, 10}, {20, 30}, {40, 5}} {
		if a.Value(p[0], p[1]) != b.Value(p[0], p[1]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical surfaces")
	}
}

func TestSeabedValueRange(t *testing.T) {
	s := NewSeabed(DefaultSeabedConfig())
	lo, hi := ValueRange(s, 100)
	if lo >= hi {
		t.Fatalf("degenerate range [%v, %v]", lo, hi)
	}
	// The default config must span the experiment isolevels {6,8,10,12}.
	if lo > 6 || hi < 12 {
		t.Errorf("range [%v, %v] does not span isolevels 6..12", lo, hi)
	}
	// Depths stay physically plausible.
	if lo < 0 || hi > 30 {
		t.Errorf("range [%v, %v] implausible for harbor depth", lo, hi)
	}
}

func TestSeabedClampOutsideBounds(t *testing.T) {
	s := NewSeabed(DefaultSeabedConfig())
	if got, want := s.Value(-10, 25), s.Value(0, 25); got != want {
		t.Errorf("clamp x: %v != %v", got, want)
	}
	if got, want := s.Value(25, 1e6), s.Value(25, 50); got != want {
		t.Errorf("clamp y: %v != %v", got, want)
	}
}

func TestSeabedSmoothness(t *testing.T) {
	// Adjacent samples must differ by a small amount (smooth surface).
	s := NewSeabed(DefaultSeabedConfig())
	const h = 0.1
	for x := 1.0; x < 49; x += 3.7 {
		for y := 1.0; y < 49; y += 3.3 {
			d := s.Value(x+h, y) - s.Value(x, y)
			if d > 0.5 || d < -0.5 {
				t.Fatalf("surface jump %v at (%v,%v)", d, x, y)
			}
		}
	}
}

func TestSeabedHasMultipleContourRegions(t *testing.T) {
	// The default surface must cross each experiment isolevel somewhere, so
	// every isolevel produces a non-empty isoline.
	s := NewSeabed(DefaultSeabedConfig())
	for _, level := range (Levels{Low: 6, High: 12, Step: 2}).Values() {
		if segs := IsolineSegments(s, level, 100, 100); len(segs) == 0 {
			t.Errorf("isolevel %v has no isoline on default seabed", level)
		}
	}
}

func TestSeabedGradientNonzeroOnIsolines(t *testing.T) {
	// Gradient must be well-defined where isoline nodes live; sample points
	// near the 8 m isoline.
	s := NewSeabed(DefaultSeabedConfig())
	pts := IsolinePoints(s, 8, 80, 80, 1)
	if len(pts) == 0 {
		t.Fatal("no isoline points")
	}
	zero := 0
	for _, p := range pts {
		if s.GradientAt(p.X, p.Y).Norm() < 1e-6 {
			zero++
		}
	}
	if zero > len(pts)/10 {
		t.Errorf("%d/%d isoline points have (near) zero gradient", zero, len(pts))
	}
}

func TestValueRangeConstantField(t *testing.T) {
	g, err := NewGridField([][]float64{{5, 5}, {5, 5}}, 0, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ValueRange(g, 10)
	if !almostEqual(lo, 5, 1e-9) || !almostEqual(hi, 5, 1e-9) {
		t.Errorf("constant field range = [%v, %v]", lo, hi)
	}
}
