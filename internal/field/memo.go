package field

import (
	"reflect"
	"sync"

	"isomap/internal/geom"
)

// Memo caches the expensive ground-truth derivations of a field — the
// classified raster and the sampled isoline point sets — per (field,
// levels/level, resolution) key. The experiment sweeps re-evaluate the
// same truth for every protocol run of every seed; one Memo shared across
// a sweep collapses that to a single computation per distinct key.
//
// Cached values are returned by reference and shared between callers
// (possibly on different goroutines): they must be treated as immutable.
// Keys include the Field interface value itself, so memoization only helps
// when callers share field instances; Cacheable reports whether a field's
// dynamic type can serve as a key at all.
//
// All methods are safe for concurrent use.
type Memo struct {
	mu       sync.Mutex
	rasters  map[rasterKey]*Raster
	isolines map[isolineKey][]geom.Point
}

type rasterKey struct {
	f          Field
	levels     Levels
	rows, cols int
}

type isolineKey struct {
	f      Field
	level  float64
	nx, ny int
	step   float64
}

// NewMemo returns an empty truth cache.
func NewMemo() *Memo {
	return &Memo{
		rasters:  make(map[rasterKey]*Raster),
		isolines: make(map[isolineKey][]geom.Point),
	}
}

// Cacheable reports whether f can be used as a memo key: its dynamic type
// must be comparable (pointer field implementations are; struct fields
// embedding slices are not).
func Cacheable(f Field) bool {
	return f != nil && reflect.TypeOf(f).Comparable()
}

// ClassifyRaster is a caching ClassifyRaster: the shared result must not
// be modified. Non-cacheable fields fall through to a direct computation.
func (m *Memo) ClassifyRaster(f Field, levels Levels, rows, cols int) *Raster {
	if m == nil || !Cacheable(f) {
		return ClassifyRaster(f, levels, rows, cols)
	}
	key := rasterKey{f: f, levels: levels, rows: rows, cols: cols}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ra, ok := m.rasters[key]; ok {
		return ra
	}
	ra := ClassifyRaster(f, levels, rows, cols)
	m.rasters[key] = ra
	return ra
}

// IsolinePoints is a caching IsolinePoints: the shared slice must not be
// modified. Non-cacheable fields fall through to a direct computation.
func (m *Memo) IsolinePoints(f Field, level float64, nx, ny int, step float64) []geom.Point {
	if m == nil || !Cacheable(f) {
		return IsolinePoints(f, level, nx, ny, step)
	}
	key := isolineKey{f: f, level: level, nx: nx, ny: ny, step: step}
	m.mu.Lock()
	defer m.mu.Unlock()
	if pts, ok := m.isolines[key]; ok {
		return pts
	}
	pts := IsolinePoints(f, level, nx, ny, step)
	m.isolines[key] = pts
	return pts
}
