package field

import "math"

// DynamicField is a time-varying scalar field: At freezes it at an instant.
type DynamicField interface {
	// At returns the field's snapshot at time t (arbitrary units).
	At(t float64) Field
}

// SiltingSeabed models the harbor's dominant hazard (Sec. 2): silt
// progressively deposited across the sea route, shallowing the water. The
// deposition is a Gaussian band over the diagonal line x + y = BandCenter
// whose amplitude grows linearly in time, with an optional storm that
// multiplies the rate during a time window (the paper recounts a storm
// that cut the route depth from 9.5 m to 5.7 m in days).
type SiltingSeabed struct {
	// Base is the initial seabed.
	Base Field
	// BandCenter locates the deposition band: the line x + y = BandCenter.
	BandCenter float64
	// BandWidth is the Gaussian half-width of the band (field units).
	BandWidth float64
	// Rate is the shallowing at the band center per unit time (meters).
	Rate float64
	// StormStart/StormEnd bound an optional high-intensity window during
	// which deposition runs StormFactor times faster.
	StormStart  float64
	StormEnd    float64
	StormFactor float64
	// MinDepth clamps the depth from below (the bank never rises above
	// the surface).
	MinDepth float64
}

var _ DynamicField = (*SiltingSeabed)(nil)

// DefaultSilting returns a silting scenario over the given base seabed:
// a band across the middle of a 50-unit route shallowing 0.25 m per time
// unit, with a 3x storm between t=4 and t=6.
func DefaultSilting(base Field) *SiltingSeabed {
	return &SiltingSeabed{
		Base:        base,
		BandCenter:  55,
		BandWidth:   8,
		Rate:        0.25,
		StormStart:  4,
		StormEnd:    6,
		StormFactor: 3,
		MinDepth:    0.5,
	}
}

// depositionAt integrates the deposition amplitude up to time t.
func (s *SiltingSeabed) depositionAt(t float64) float64 {
	if t <= 0 {
		return 0
	}
	base := t
	if s.StormFactor > 1 && s.StormEnd > s.StormStart {
		overlap := math.Min(t, s.StormEnd) - s.StormStart
		if overlap > 0 {
			base += overlap * (s.StormFactor - 1)
		}
	}
	return base * s.Rate
}

// At implements DynamicField.
func (s *SiltingSeabed) At(t float64) Field {
	return &siltSnapshot{cfg: s, amp: s.depositionAt(t)}
}

type siltSnapshot struct {
	cfg *SiltingSeabed
	amp float64
}

func (sn *siltSnapshot) Value(x, y float64) float64 {
	depth := sn.cfg.Base.Value(x, y)
	d := (x + y - sn.cfg.BandCenter) / sn.cfg.BandWidth
	depth -= sn.amp * math.Exp(-d*d)
	if depth < sn.cfg.MinDepth {
		depth = sn.cfg.MinDepth
	}
	return depth
}

func (sn *siltSnapshot) Bounds() (x0, y0, x1, y1 float64) {
	return sn.cfg.Base.Bounds()
}
