package field

import (
	"fmt"
	"math"
)

// This file is the temporal-field library behind the delta-report
// monitoring experiments: seeded, deterministic time-varying surfaces
// beyond SiltingSeabed. Every random quantity is drawn from a
// splitmix64-hashed stream keyed by (seed, salt) — the same derivation
// faults.Plan uses — and every snapshot is a pure function of (config,
// t). Nothing carries RNG state between calls, so any (seed, t) pair is
// reproducible across runs, shard widths, SeekRound replays and
// checkpoint restores.

// mix64 is splitmix64's finalizer over a seed/salt pair: one hop of the
// seeded stream family shared with the fault layer.
func mix64(seed, salt uint64) uint64 {
	z := seed ^ salt ^ 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit01 returns the stream's uniform draw in [0, 1).
func unit01(seed, salt uint64) float64 {
	return float64(mix64(seed, salt)>>11) / (1 << 53)
}

// finite rejects NaN and infinities in config parameters.
func finite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("field: %s must be finite, got %g", name, v)
	}
	return nil
}

// reflectInto folds p into [lo, hi] as a triangle wave, so drifting feature
// centers bounce off the field border instead of leaving it. Pure in p.
func reflectInto(p, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	span := hi - lo
	ph := math.Mod(p-lo, 2*span)
	if ph < 0 {
		ph += 2 * span
	}
	if ph > span {
		ph = 2*span - ph
	}
	return lo + ph
}

// DriftingBumpsConfig parameterizes a field of Gaussian features that
// drift across the extent and breathe in amplitude.
type DriftingBumpsConfig struct {
	// Base is the static surface the features ride on.
	Base Field
	// Bumps is the feature count.
	Bumps int
	// Speed is the drift rate of each feature center (field units per
	// time unit); the direction is drawn per feature.
	Speed float64
	// Grow is the relative amplitude modulation in [0, 1): each feature's
	// amplitude oscillates between (1-Grow) and (1+Grow) times its drawn
	// value on a per-feature period.
	Grow float64
	// AmpMin and AmpMax bound drawn amplitudes (meters); signs alternate
	// by stream draw, modelling shoals and scoured channels.
	AmpMin float64
	AmpMax float64
	// SigmaMin and SigmaMax bound drawn feature radii (field units).
	SigmaMin float64
	SigmaMax float64
	// Seed keys the feature streams.
	Seed int64
}

// DefaultDriftingBumps returns a drifting-features scenario over base
// with 5 features sized for the experiment fields, drifting at speed.
func DefaultDriftingBumps(base Field, speed float64, seed int64) (*DriftingBumps, error) {
	return NewDriftingBumps(DriftingBumpsConfig{
		Base:     base,
		Bumps:    5,
		Speed:    speed,
		Grow:     0.3,
		AmpMin:   1.5,
		AmpMax:   3.5,
		SigmaMin: 4,
		SigmaMax: 9,
		Seed:     seed,
	})
}

// tbump is one drawn drifting feature.
type tbump struct {
	x0, y0 float64 // initial center
	vx, vy float64 // drift velocity
	amp    float64
	sigma2 float64
	phase  float64 // amplitude-modulation phase
	period float64 // amplitude-modulation period
}

// DriftingBumps is the materialized drifting-features field.
type DriftingBumps struct {
	cfg   DriftingBumpsConfig
	bumps []tbump
}

var _ DynamicField = (*DriftingBumps)(nil)

// NewDriftingBumps validates cfg and draws the feature streams.
func NewDriftingBumps(cfg DriftingBumpsConfig) (*DriftingBumps, error) {
	if cfg.Base == nil {
		return nil, fmt.Errorf("field: drifting bumps need a base field")
	}
	if cfg.Bumps < 1 || cfg.Bumps > 10000 {
		return nil, fmt.Errorf("field: bump count %d outside [1, 10000]", cfg.Bumps)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Speed", cfg.Speed}, {"Grow", cfg.Grow},
		{"AmpMin", cfg.AmpMin}, {"AmpMax", cfg.AmpMax},
		{"SigmaMin", cfg.SigmaMin}, {"SigmaMax", cfg.SigmaMax},
	} {
		if err := finite(p.name, p.v); err != nil {
			return nil, err
		}
	}
	if cfg.Speed < 0 {
		return nil, fmt.Errorf("field: negative drift speed %g", cfg.Speed)
	}
	if cfg.Grow < 0 || cfg.Grow >= 1 {
		return nil, fmt.Errorf("field: Grow %g outside [0, 1)", cfg.Grow)
	}
	if cfg.AmpMin < 0 || cfg.AmpMax < cfg.AmpMin {
		return nil, fmt.Errorf("field: amplitude range [%g, %g] invalid", cfg.AmpMin, cfg.AmpMax)
	}
	if cfg.SigmaMin <= 0 || cfg.SigmaMax < cfg.SigmaMin {
		return nil, fmt.Errorf("field: sigma range [%g, %g] invalid", cfg.SigmaMin, cfg.SigmaMax)
	}
	x0, y0, x1, y1 := cfg.Base.Bounds()
	if !(x1 > x0) || !(y1 > y0) {
		return nil, fmt.Errorf("field: base extent [%g,%g]x[%g,%g] is empty", x0, x1, y0, y1)
	}
	d := &DriftingBumps{cfg: cfg}
	seed := uint64(cfg.Seed)
	for i := 0; i < cfg.Bumps; i++ {
		salt := uint64(i) * 8
		amp := cfg.AmpMin + unit01(seed, salt+3)*(cfg.AmpMax-cfg.AmpMin)
		if mix64(seed, salt+4)&1 == 0 {
			amp = -amp
		}
		sigma := cfg.SigmaMin + unit01(seed, salt+5)*(cfg.SigmaMax-cfg.SigmaMin)
		angle := 2 * math.Pi * unit01(seed, salt+2)
		d.bumps = append(d.bumps, tbump{
			// Centers start away from the border so initial contours close
			// inside the field; drift then bounces off the border.
			x0:     x0 + (x1-x0)*(0.15+0.7*unit01(seed, salt)),
			y0:     y0 + (y1-y0)*(0.15+0.7*unit01(seed, salt+1)),
			vx:     cfg.Speed * math.Cos(angle),
			vy:     cfg.Speed * math.Sin(angle),
			amp:    amp,
			sigma2: sigma * sigma,
			phase:  2 * math.Pi * unit01(seed, salt+6),
			period: 4 + 8*unit01(seed, salt+7),
		})
	}
	return d, nil
}

// At implements DynamicField: the snapshot precomputes each feature's
// position and breathed amplitude at t.
func (d *DriftingBumps) At(t float64) Field {
	x0, y0, x1, y1 := d.cfg.Base.Bounds()
	sn := &driftSnapshot{base: d.cfg.Base}
	for _, b := range d.bumps {
		amp := b.amp
		if d.cfg.Grow > 0 {
			amp *= 1 + d.cfg.Grow*math.Sin(2*math.Pi*t/b.period+b.phase)
		}
		sn.bumps = append(sn.bumps, bump{
			cx:     reflectInto(b.x0+b.vx*t, x0, x1),
			cy:     reflectInto(b.y0+b.vy*t, y0, y1),
			amp:    amp,
			sigma2: b.sigma2,
		})
	}
	return sn
}

type driftSnapshot struct {
	base  Field
	bumps []bump
}

func (sn *driftSnapshot) Value(x, y float64) float64 {
	v := sn.base.Value(x, y)
	for _, b := range sn.bumps {
		dx, dy := x-b.cx, y-b.cy
		v += b.amp * math.Exp(-(dx*dx+dy*dy)/(2*b.sigma2))
	}
	return v
}

func (sn *driftSnapshot) Bounds() (x0, y0, x1, y1 float64) {
	return sn.base.Bounds()
}

// AdvectedFrontConfig parameterizes a sigmoid front sweeping across the
// field along a drawn direction — a salinity or turbidity front advected
// through the monitored region.
type AdvectedFrontConfig struct {
	// Base is the static surface under the front.
	Base Field
	// Amp is the value step across the front (meters).
	Amp float64
	// Width is the transition half-width (field units).
	Width float64
	// Speed is the front's advance rate (field units per time unit).
	Speed float64
	// Seed keys the direction and starting-offset draws.
	Seed int64
}

// AdvectedFront is the materialized sweeping-front field.
type AdvectedFront struct {
	cfg        AdvectedFrontConfig
	nx, ny     float64 // unit sweep direction
	pmin, pmax float64 // projection span of the extent
	start      float64 // drawn starting offset within the sweep cycle
}

var _ DynamicField = (*AdvectedFront)(nil)

// NewAdvectedFront validates cfg and draws the sweep geometry.
func NewAdvectedFront(cfg AdvectedFrontConfig) (*AdvectedFront, error) {
	if cfg.Base == nil {
		return nil, fmt.Errorf("field: advected front needs a base field")
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Amp", cfg.Amp}, {"Width", cfg.Width}, {"Speed", cfg.Speed},
	} {
		if err := finite(p.name, p.v); err != nil {
			return nil, err
		}
	}
	if cfg.Width <= 0 {
		return nil, fmt.Errorf("field: front width %g must be positive", cfg.Width)
	}
	if cfg.Speed < 0 {
		return nil, fmt.Errorf("field: negative front speed %g", cfg.Speed)
	}
	x0, y0, x1, y1 := cfg.Base.Bounds()
	if !(x1 > x0) || !(y1 > y0) {
		return nil, fmt.Errorf("field: base extent [%g,%g]x[%g,%g] is empty", x0, x1, y0, y1)
	}
	seed := uint64(cfg.Seed)
	angle := 2 * math.Pi * unit01(seed, 1)
	nx, ny := math.Cos(angle), math.Sin(angle)
	// Projection span of the extent's corners along the sweep direction.
	pmin, pmax := math.Inf(1), math.Inf(-1)
	for _, c := range [][2]float64{{x0, y0}, {x1, y0}, {x0, y1}, {x1, y1}} {
		p := c[0]*nx + c[1]*ny
		pmin = math.Min(pmin, p)
		pmax = math.Max(pmax, p)
	}
	return &AdvectedFront{
		cfg: cfg, nx: nx, ny: ny, pmin: pmin, pmax: pmax,
		start: unit01(seed, 2),
	}, nil
}

// At implements DynamicField. The front's position cycles over the
// projection span (plus margins so it fully enters and exits); a cycle
// restart is a sudden reset, which is fine — and deterministic — for a
// monitoring scenario.
func (a *AdvectedFront) At(t float64) Field {
	cycle := (a.pmax - a.pmin) + 4*a.cfg.Width
	pos := a.pmin - 2*a.cfg.Width
	if a.cfg.Speed > 0 && cycle > 0 {
		pos += math.Mod(a.start*cycle+a.cfg.Speed*t, cycle)
	}
	return &frontSnapshot{a: a, pos: pos}
}

type frontSnapshot struct {
	a   *AdvectedFront
	pos float64
}

func (sn *frontSnapshot) Value(x, y float64) float64 {
	a := sn.a
	proj := x*a.nx + y*a.ny
	return a.cfg.Base.Value(x, y) + a.cfg.Amp*0.5*(1+math.Tanh((sn.pos-proj)/a.cfg.Width))
}

func (sn *frontSnapshot) Bounds() (x0, y0, x1, y1 float64) {
	return sn.a.cfg.Base.Bounds()
}

// StepEventsConfig parameterizes sudden localized events: dredging,
// collapses, spills. Each event appears instantly at its drawn time and
// persists.
type StepEventsConfig struct {
	// Base is the static surface the events disturb.
	Base Field
	// Events is the number of scheduled events.
	Events int
	// Horizon spans the schedule: event times are drawn uniformly over
	// [0, Horizon].
	Horizon float64
	// AmpMin and AmpMax bound event amplitudes (meters); signs alternate
	// by stream draw.
	AmpMin float64
	AmpMax float64
	// RadMin and RadMax bound event radii (field units).
	RadMin float64
	RadMax float64
	// Seed keys the schedule streams.
	Seed int64
}

// stepEvent is one drawn scheduled event.
type stepEvent struct {
	t      float64
	cx, cy float64
	amp    float64
	rad2   float64
}

// StepEvents is the materialized sudden-event field.
type StepEvents struct {
	cfg    StepEventsConfig
	events []stepEvent
}

var _ DynamicField = (*StepEvents)(nil)

// NewStepEvents validates cfg and draws the event schedule.
func NewStepEvents(cfg StepEventsConfig) (*StepEvents, error) {
	if cfg.Base == nil {
		return nil, fmt.Errorf("field: step events need a base field")
	}
	if cfg.Events < 1 || cfg.Events > 10000 {
		return nil, fmt.Errorf("field: event count %d outside [1, 10000]", cfg.Events)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Horizon", cfg.Horizon},
		{"AmpMin", cfg.AmpMin}, {"AmpMax", cfg.AmpMax},
		{"RadMin", cfg.RadMin}, {"RadMax", cfg.RadMax},
	} {
		if err := finite(p.name, p.v); err != nil {
			return nil, err
		}
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("field: horizon %g must be positive", cfg.Horizon)
	}
	if cfg.AmpMin < 0 || cfg.AmpMax < cfg.AmpMin {
		return nil, fmt.Errorf("field: amplitude range [%g, %g] invalid", cfg.AmpMin, cfg.AmpMax)
	}
	if cfg.RadMin <= 0 || cfg.RadMax < cfg.RadMin {
		return nil, fmt.Errorf("field: radius range [%g, %g] invalid", cfg.RadMin, cfg.RadMax)
	}
	x0, y0, x1, y1 := cfg.Base.Bounds()
	if !(x1 > x0) || !(y1 > y0) {
		return nil, fmt.Errorf("field: base extent [%g,%g]x[%g,%g] is empty", x0, x1, y0, y1)
	}
	s := &StepEvents{cfg: cfg}
	seed := uint64(cfg.Seed)
	for i := 0; i < cfg.Events; i++ {
		salt := uint64(i)*8 + 100
		amp := cfg.AmpMin + unit01(seed, salt+3)*(cfg.AmpMax-cfg.AmpMin)
		if mix64(seed, salt+4)&1 == 0 {
			amp = -amp
		}
		rad := cfg.RadMin + unit01(seed, salt+5)*(cfg.RadMax-cfg.RadMin)
		s.events = append(s.events, stepEvent{
			t:    unit01(seed, salt) * cfg.Horizon,
			cx:   x0 + (x1-x0)*(0.15+0.7*unit01(seed, salt+1)),
			cy:   y0 + (y1-y0)*(0.15+0.7*unit01(seed, salt+2)),
			amp:  amp,
			rad2: rad * rad,
		})
	}
	return s, nil
}

// At implements DynamicField: the snapshot carries the events whose time
// has passed.
func (s *StepEvents) At(t float64) Field {
	sn := &stepSnapshot{base: s.cfg.Base}
	for _, e := range s.events {
		if e.t <= t {
			sn.active = append(sn.active, e)
		}
	}
	return sn
}

type stepSnapshot struct {
	base   Field
	active []stepEvent
}

func (sn *stepSnapshot) Value(x, y float64) float64 {
	v := sn.base.Value(x, y)
	for _, e := range sn.active {
		dx, dy := x-e.cx, y-e.cy
		v += e.amp * math.Exp(-(dx*dx+dy*dy)/(2*e.rad2))
	}
	return v
}

func (sn *stepSnapshot) Bounds() (x0, y0, x1, y1 float64) {
	return sn.base.Bounds()
}

// TemporalKinds lists the named scenarios NewTemporal accepts.
func TemporalKinds() []string { return []string{"silting", "drift", "front", "step"} }

// timeScaled dilates a scenario's clock: At(t) samples the wrapped
// scenario at k*t. NewTemporal uses it so its speed knob scales *every*
// time dependence of a scenario uniformly — drift, amplitude breathing,
// event schedules — instead of only the parameters that happen to carry
// "speed" in their name. At k=1 it is the identity.
type timeScaled struct {
	d DynamicField
	k float64
}

func (s timeScaled) At(t float64) Field { return s.d.At(s.k * t) }

// NewTemporal builds a named temporal scenario over base. speed is a
// uniform time dilation of the scenario's default evolution rate (<= 0
// selects 1): "silting" is DefaultSilting, "drift" is
// DefaultDriftingBumps, "front" an AdvectedFront, "step" a StepEvents
// schedule, each running speed times faster than its defaults. It is
// the registry behind isomapd -field and the temporal sweep.
func NewTemporal(kind string, base Field, speed float64, seed int64) (DynamicField, error) {
	if base == nil {
		return nil, fmt.Errorf("field: temporal scenario %q needs a base field", kind)
	}
	if err := finite("speed", speed); err != nil {
		return nil, err
	}
	if speed <= 0 {
		speed = 1
	}
	var (
		d   DynamicField
		err error
	)
	switch kind {
	case "", "silting":
		d = DefaultSilting(base)
	case "drift":
		d, err = DefaultDriftingBumps(base, 0.4, seed)
	case "front":
		d, err = NewAdvectedFront(AdvectedFrontConfig{
			Base: base, Amp: 3, Width: 4, Speed: 1.5, Seed: seed,
		})
	case "step":
		d, err = NewStepEvents(StepEventsConfig{
			Base: base, Events: 6, Horizon: 10,
			AmpMin: 1.5, AmpMax: 3.5, RadMin: 3, RadMax: 7, Seed: seed,
		})
	default:
		return nil, fmt.Errorf("field: unknown temporal scenario %q (have %v)", kind, TemporalKinds())
	}
	if err != nil {
		return nil, err
	}
	if speed == 1 {
		return d, nil
	}
	return timeScaled{d: d, k: speed}, nil
}
