package field

import (
	"isomap/internal/geom"
)

// IsolineSegments extracts the ground-truth isoline of the field at the
// given level using marching squares on an nx x ny grid. The result is an
// unordered set of line segments approximating the true curve; for metric
// purposes (Hausdorff distance, Fig. 12) an unordered sampling suffices.
func IsolineSegments(f Field, level float64, nx, ny int) []geom.Segment {
	if nx < 1 || ny < 1 {
		return nil
	}
	x0, y0, x1, y1 := f.Bounds()
	dx := (x1 - x0) / float64(nx)
	dy := (y1 - y0) / float64(ny)

	// Sample grid corners once.
	vals := make([][]float64, ny+1)
	for j := 0; j <= ny; j++ {
		vals[j] = make([]float64, nx+1)
		for i := 0; i <= nx; i++ {
			vals[j][i] = f.Value(x0+float64(i)*dx, y0+float64(j)*dy)
		}
	}

	var segs []geom.Segment
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			cx0 := x0 + float64(i)*dx
			cy0 := y0 + float64(j)*dy
			// Corner values: bl, br, tr, tl.
			bl := vals[j][i]
			br := vals[j][i+1]
			tr := vals[j+1][i+1]
			tl := vals[j+1][i]

			idx := 0
			if bl >= level {
				idx |= 1
			}
			if br >= level {
				idx |= 2
			}
			if tr >= level {
				idx |= 4
			}
			if tl >= level {
				idx |= 8
			}
			if idx == 0 || idx == 15 {
				continue
			}

			// Edge interpolation points.
			bottom := func() geom.Point {
				return geom.Point{X: cx0 + dx*interp(bl, br, level), Y: cy0}
			}
			top := func() geom.Point {
				return geom.Point{X: cx0 + dx*interp(tl, tr, level), Y: cy0 + dy}
			}
			left := func() geom.Point {
				return geom.Point{X: cx0, Y: cy0 + dy*interp(bl, tl, level)}
			}
			right := func() geom.Point {
				return geom.Point{X: cx0 + dx, Y: cy0 + dy*interp(br, tr, level)}
			}

			add := func(a, b geom.Point) {
				segs = append(segs, geom.Segment{A: a, B: b})
			}

			switch idx {
			case 1, 14:
				add(left(), bottom())
			case 2, 13:
				add(bottom(), right())
			case 3, 12:
				add(left(), right())
			case 4, 11:
				add(right(), top())
			case 6, 9:
				add(bottom(), top())
			case 7, 8:
				add(left(), top())
			case 5, 10:
				// Ambiguous saddle: disambiguate with the cell-center value.
				center := f.Value(cx0+dx/2, cy0+dy/2)
				centerHigh := center >= level
				if (idx == 5) == centerHigh {
					add(left(), top())
					add(bottom(), right())
				} else {
					add(left(), bottom())
					add(right(), top())
				}
			}
		}
	}
	return segs
}

// interp returns the fraction along an edge from value a to value b at which
// the level is crossed, clamped to [0, 1].
func interp(a, b, level float64) float64 {
	if a == b {
		return 0.5
	}
	t := (level - a) / (b - a)
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// IsolinePoints samples the ground-truth isoline at the given level into a
// point set with spacing at most step along each marching-squares segment.
func IsolinePoints(f Field, level float64, nx, ny int, step float64) []geom.Point {
	segs := IsolineSegments(f, level, nx, ny)
	var pts []geom.Point
	for _, s := range segs {
		pts = append(pts, geom.Polyline{s.A, s.B}.Sample(step)...)
	}
	return pts
}

// IsolineLength returns the total length of the level's ground-truth
// isoline; Theorem 4.1's O(sqrt n) bound is checked against this in tests.
func IsolineLength(f Field, level float64, nx, ny int) float64 {
	var total float64
	for _, s := range IsolineSegments(f, level, nx, ny) {
		total += s.Length()
	}
	return total
}
