package field

import (
	"math"
	"testing"

	"isomap/internal/geom"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLevelsValues(t *testing.T) {
	l := Levels{Low: 6, High: 12, Step: 2}
	want := []float64{6, 8, 10, 12}
	got := l.Values()
	if len(got) != len(want) {
		t.Fatalf("Values = %v, want %v", got, want)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-9) {
			t.Errorf("Values[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := l.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
}

func TestLevelsValuesDegenerate(t *testing.T) {
	if got := (Levels{Low: 1, High: 0, Step: 1}).Values(); got != nil {
		t.Errorf("inverted range Values = %v, want nil", got)
	}
	if got := (Levels{Low: 0, High: 1, Step: 0}).Values(); got != nil {
		t.Errorf("zero step Values = %v, want nil", got)
	}
	if got := (Levels{Low: 5, High: 5, Step: 1}).Values(); len(got) != 1 || got[0] != 5 {
		t.Errorf("single-level Values = %v, want [5]", got)
	}
}

func TestLevelsClassify(t *testing.T) {
	l := Levels{Low: 6, High: 12, Step: 2}
	tests := []struct {
		v    float64
		want int
	}{
		{5, 0},
		{6, 1},
		{7.9, 1},
		{8, 2},
		{11.9, 3},
		{12, 4},
		{100, 4},
		{-10, 0},
	}
	for _, tt := range tests {
		if got := l.Classify(tt.v); got != tt.want {
			t.Errorf("Classify(%v) = %d, want %d", tt.v, got, tt.want)
		}
	}
	if got := (Levels{}).Classify(1); got != 0 {
		t.Errorf("zero Levels Classify = %d", got)
	}
}

func TestLevelsClassifyMonotoneProperty(t *testing.T) {
	l := Levels{Low: 0, High: 10, Step: 1.5}
	prev := -1
	for v := -5.0; v <= 15; v += 0.01 {
		c := l.Classify(v)
		if c < prev {
			t.Fatalf("Classify not monotone at %v: %d < %d", v, c, prev)
		}
		prev = c
	}
}

func TestLevelsNearest(t *testing.T) {
	l := Levels{Low: 6, High: 12, Step: 2}
	if v, i := l.Nearest(8.7); v != 8 || i != 1 {
		t.Errorf("Nearest(8.7) = %v, %d", v, i)
	}
	if v, i := l.Nearest(100); v != 12 || i != 3 {
		t.Errorf("Nearest(100) = %v, %d", v, i)
	}
	if _, i := (Levels{}).Nearest(1); i != -1 {
		t.Errorf("empty Nearest index = %d, want -1", i)
	}
}

func TestNumericGradientMatchesAnalytic(t *testing.T) {
	s := NewSeabed(DefaultSeabedConfig())
	pts := []geom.Point{{X: 10, Y: 10}, {X: 25, Y: 25}, {X: 40, Y: 12}, {X: 7, Y: 44}}
	for _, p := range pts {
		exact := s.GradientAt(p.X, p.Y)
		approx := NumericGradient(s, p.X, p.Y, 1e-4)
		if d := exact.Sub(approx).Norm(); d > 1e-5 {
			t.Errorf("gradient mismatch at %v: exact %v approx %v", p, exact, approx)
		}
	}
}

func TestGradientAtDispatch(t *testing.T) {
	s := NewSeabed(DefaultSeabedConfig())
	// GradientField path uses the analytic result.
	if got, want := GradientAt(s, 20, 20), s.GradientAt(20, 20); got != want {
		t.Errorf("GradientAt = %v, want %v", got, want)
	}
	// Non-gradient fields fall back to differences.
	g, err := SampleField(s, 101, 101)
	if err != nil {
		t.Fatal(err)
	}
	plain := struct{ Field }{g} // hide GradientAt
	got := GradientAt(plain, 20, 20)
	want := s.GradientAt(20, 20)
	if got.Sub(want).Norm() > 0.05 {
		t.Errorf("fallback gradient %v too far from %v", got, want)
	}
}

func TestBoundsRect(t *testing.T) {
	s := NewSeabed(DefaultSeabedConfig())
	r := BoundsRect(s)
	if got := r.Area(); !almostEqual(got, 2500, 1e-9) {
		t.Errorf("bounds area = %v, want 2500", got)
	}
}
