package field

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"isomap/internal/geom"
)

// GridField is a field defined by samples on a regular grid with bilinear
// interpolation between them. It is the vehicle for loading external traces
// (such as a sonar depth survey) from text.
type GridField struct {
	// values[row][col]; row 0 is y = y0.
	values [][]float64
	x0, y0 float64
	x1, y1 float64
}

var _ GradientField = (*GridField)(nil)

// NewGridField builds a grid field over [x0,x1] x [y0,y1] from row-major
// samples. values[r][c] is the sample at y = y0 + r*dy, x = x0 + c*dx. It
// returns an error for ragged or too-small grids or an empty extent.
func NewGridField(values [][]float64, x0, y0, x1, y1 float64) (*GridField, error) {
	if len(values) < 2 || len(values[0]) < 2 {
		return nil, fmt.Errorf("grid field: need at least 2x2 samples, got %dx%d",
			len(values), lenFirst(values))
	}
	cols := len(values[0])
	for r, row := range values {
		if len(row) != cols {
			return nil, fmt.Errorf("grid field: ragged row %d (%d cols, want %d)", r, len(row), cols)
		}
	}
	// Non-finite extents slip through the <= comparison (NaN compares
	// false against everything) and poison every later cell lookup.
	for _, e := range [...]float64{x0, y0, x1, y1} {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return nil, fmt.Errorf("grid field: non-finite extent [%g,%g]x[%g,%g]", x0, x1, y0, y1)
		}
	}
	if x1 <= x0 || y1 <= y0 {
		return nil, fmt.Errorf("grid field: empty extent [%g,%g]x[%g,%g]", x0, x1, y0, y1)
	}
	cp := make([][]float64, len(values))
	for r, row := range values {
		cp[r] = make([]float64, cols)
		copy(cp[r], row)
	}
	return &GridField{values: cp, x0: x0, y0: y0, x1: x1, y1: y1}, nil
}

func lenFirst(v [][]float64) int {
	if len(v) == 0 {
		return 0
	}
	return len(v[0])
}

// ParseGrid reads a whitespace-separated grid of numbers (one row per line,
// blank lines and lines starting with '#' ignored) and builds a GridField
// over the given extent.
func ParseGrid(r io.Reader, x0, y0, x1, y1 float64) (*GridField, error) {
	var values [][]float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		row := make([]float64, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("grid line %d: parse %q: %w", lineNo, f, err)
			}
			row = append(row, v)
		}
		values = append(values, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("grid scan: %w", err)
	}
	return NewGridField(values, x0, y0, x1, y1)
}

// Bounds implements Field.
func (g *GridField) Bounds() (x0, y0, x1, y1 float64) {
	return g.x0, g.y0, g.x1, g.y1
}

// Rows returns the number of sample rows.
func (g *GridField) Rows() int { return len(g.values) }

// Cols returns the number of sample columns.
func (g *GridField) Cols() int { return len(g.values[0]) }

// cell maps a point to fractional grid coordinates (clamped to the grid).
func (g *GridField) cell(x, y float64) (fx, fy float64) {
	nx, ny := float64(g.Cols()-1), float64(g.Rows()-1)
	fx = (x - g.x0) / (g.x1 - g.x0) * nx
	fy = (y - g.y0) / (g.y1 - g.y0) * ny
	// A NaN coordinate falls through both clamps — math.Max(0, NaN) is
	// NaN — and int(NaN) indexes out of range. Pin it to the origin cell.
	if math.IsNaN(fx) {
		fx = 0
	}
	if math.IsNaN(fy) {
		fy = 0
	}
	fx = math.Max(0, math.Min(nx, fx))
	fy = math.Max(0, math.Min(ny, fy))
	return fx, fy
}

// Value returns the bilinearly interpolated sample at (x, y).
func (g *GridField) Value(x, y float64) float64 {
	fx, fy := g.cell(x, y)
	c0 := int(fx)
	r0 := int(fy)
	c1 := min(c0+1, g.Cols()-1)
	r1 := min(r0+1, g.Rows()-1)
	tx := fx - float64(c0)
	ty := fy - float64(r0)
	v00 := g.values[r0][c0]
	v01 := g.values[r0][c1]
	v10 := g.values[r1][c0]
	v11 := g.values[r1][c1]
	return v00*(1-tx)*(1-ty) + v01*tx*(1-ty) + v10*(1-tx)*ty + v11*tx*ty
}

// GradientAt returns the central-difference gradient at (x, y) computed at
// the grid resolution.
func (g *GridField) GradientAt(x, y float64) geom.Vec {
	hx := (g.x1 - g.x0) / float64(g.Cols()-1)
	hy := (g.y1 - g.y0) / float64(g.Rows()-1)
	return geom.Vec{
		X: (g.Value(x+hx, y) - g.Value(x-hx, y)) / (2 * hx),
		Y: (g.Value(x, y+hy) - g.Value(x, y-hy)) / (2 * hy),
	}
}

// SampleField resamples any field onto an rows x cols GridField. It is used
// to freeze a synthetic surface into trace form.
func SampleField(f Field, rows, cols int) (*GridField, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("sample field: need at least 2x2, got %dx%d", rows, cols)
	}
	x0, y0, x1, y1 := f.Bounds()
	values := make([][]float64, rows)
	for r := 0; r < rows; r++ {
		values[r] = make([]float64, cols)
		y := y0 + (y1-y0)*float64(r)/float64(rows-1)
		for c := 0; c < cols; c++ {
			x := x0 + (x1-x0)*float64(c)/float64(cols-1)
			values[r][c] = f.Value(x, y)
		}
	}
	return NewGridField(values, x0, y0, x1, y1)
}
