package field

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseGrid exercises the trace parser with arbitrary text: it must
// either return an error or a well-formed field, never panic.
func FuzzParseGrid(f *testing.F) {
	f.Add("1 2\n3 4\n")
	f.Add("# comment\n1.5 -2e3\n4 5\n")
	f.Add("")
	f.Add("1 2 3\n4 5\n")
	f.Add("nan inf\n1 2\n")
	f.Add("1\n2\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseGrid(strings.NewReader(src), 0, 0, 10, 10)
		if err != nil {
			return
		}
		if g.Rows() < 2 || g.Cols() < 2 {
			t.Fatalf("accepted grid with shape %dx%d", g.Rows(), g.Cols())
		}
		// Sampling anywhere must not panic.
		_ = g.Value(5, 5)
		_ = g.Value(-100, 100)
		_ = g.GradientAt(3, 3)
	})
}

// FuzzGridFieldParse drives the text-grid loader end to end: parse
// arbitrary bytes over an arbitrary extent, then probe any surviving
// field at adversarial coordinates (NaN, infinities, far outside the
// extent). Parsing must reject malformed input with an error — never a
// panic — and an accepted field must answer every probe with a value.
//
// This target found two real crashes, both fixed in grid.go: a NaN probe
// coordinate fell through the min/max clamp into an out-of-range index,
// and a NaN extent survived NewGridField's emptiness check.
func FuzzGridFieldParse(f *testing.F) {
	// Seed corpus: well-formed, comments, ragged, too small, non-finite
	// samples, short rows, huge exponents, and hostile extents.
	f.Add("1 2\n3 4\n", 0.0, 0.0, 10.0, 10.0, 5.0, 5.0)
	f.Add("# sonar trace\n1.5 -2e3\n4 5\n", -1.0, -1.0, 1.0, 1.0, 0.0, 0.0)
	f.Add("", 0.0, 0.0, 1.0, 1.0, 0.5, 0.5)
	f.Add("1 2 3\n4 5\n", 0.0, 0.0, 1.0, 1.0, 0.5, 0.5)
	f.Add("nan inf\n-inf 0\n", 0.0, 0.0, 1.0, 1.0, 0.5, 0.5)
	f.Add("1\n2\n", 0.0, 0.0, 1.0, 1.0, 0.5, 0.5)
	f.Add("9e308 1\n1 1\n", 0.0, 0.0, 1.0, 1.0, 2.0, -3.0)
	f.Add("1 2\n3 4\n", math.NaN(), 0.0, 10.0, 10.0, 5.0, 5.0)
	f.Add("1 2\n3 4\n", 0.0, 0.0, math.Inf(1), 10.0, 5.0, 5.0)
	f.Add("1 2\n3 4\n", 10.0, 10.0, 0.0, 0.0, 5.0, 5.0)
	f.Fuzz(func(t *testing.T, src string, x0, y0, x1, y1, px, py float64) {
		g, err := ParseGrid(strings.NewReader(src), x0, y0, x1, y1)
		if err != nil {
			return
		}
		if g.Rows() < 2 || g.Cols() < 2 {
			t.Fatalf("accepted grid with shape %dx%d", g.Rows(), g.Cols())
		}
		bx0, by0, bx1, by1 := g.Bounds()
		if bx1 <= bx0 || by1 <= by0 {
			t.Fatalf("accepted empty extent [%g,%g]x[%g,%g]", bx0, bx1, by0, by1)
		}
		// No probe may panic, whatever the coordinates.
		for _, p := range [][2]float64{
			{px, py},
			{math.NaN(), py},
			{px, math.NaN()},
			{math.Inf(1), math.Inf(-1)},
			{bx0 - 1e9, by1 + 1e9},
		} {
			_ = g.Value(p[0], p[1])
			_ = g.GradientAt(p[0], p[1])
		}
	})
}

// FuzzLevelsClassify checks the classification invariants under arbitrary
// scheme parameters and values.
func FuzzLevelsClassify(f *testing.F) {
	f.Add(6.0, 12.0, 2.0, 7.3)
	f.Add(0.0, 0.0, 0.0, 1.0)
	f.Add(-5.0, 5.0, 0.1, 0.0)
	f.Fuzz(func(t *testing.T, low, high, step, v float64) {
		for _, x := range []float64{low, high, step, v} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return
			}
		}
		if step > 0 && (high-low)/step > 1e5 {
			return // unreasonably many levels
		}
		l := Levels{Low: low, High: high, Step: step}
		c := l.Classify(v)
		n := l.Count()
		if c < 0 || c > n {
			t.Fatalf("Classify(%v) = %d outside [0, %d]", v, c, n)
		}
		if n > 0 {
			nearest, idx := l.Nearest(v)
			if idx < 0 || idx >= n {
				t.Fatalf("Nearest index %d outside [0, %d)", idx, n)
			}
			if vals := l.Values(); vals[idx] != nearest {
				t.Fatalf("Nearest value mismatch")
			}
		}
	})
}
