package field

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseGrid exercises the trace parser with arbitrary text: it must
// either return an error or a well-formed field, never panic.
func FuzzParseGrid(f *testing.F) {
	f.Add("1 2\n3 4\n")
	f.Add("# comment\n1.5 -2e3\n4 5\n")
	f.Add("")
	f.Add("1 2 3\n4 5\n")
	f.Add("nan inf\n1 2\n")
	f.Add("1\n2\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseGrid(strings.NewReader(src), 0, 0, 10, 10)
		if err != nil {
			return
		}
		if g.Rows() < 2 || g.Cols() < 2 {
			t.Fatalf("accepted grid with shape %dx%d", g.Rows(), g.Cols())
		}
		// Sampling anywhere must not panic.
		_ = g.Value(5, 5)
		_ = g.Value(-100, 100)
		_ = g.GradientAt(3, 3)
	})
}

// FuzzLevelsClassify checks the classification invariants under arbitrary
// scheme parameters and values.
func FuzzLevelsClassify(f *testing.F) {
	f.Add(6.0, 12.0, 2.0, 7.3)
	f.Add(0.0, 0.0, 0.0, 1.0)
	f.Add(-5.0, 5.0, 0.1, 0.0)
	f.Fuzz(func(t *testing.T, low, high, step, v float64) {
		for _, x := range []float64{low, high, step, v} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return
			}
		}
		if step > 0 && (high-low)/step > 1e5 {
			return // unreasonably many levels
		}
		l := Levels{Low: low, High: high, Step: step}
		c := l.Classify(v)
		n := l.Count()
		if c < 0 || c > n {
			t.Fatalf("Classify(%v) = %d outside [0, %d]", v, c, n)
		}
		if n > 0 {
			nearest, idx := l.Nearest(v)
			if idx < 0 || idx >= n {
				t.Fatalf("Nearest index %d outside [0, %d)", idx, n)
			}
			if vals := l.Values(); vals[idx] != nearest {
				t.Fatalf("Nearest value mismatch")
			}
		}
	})
}
