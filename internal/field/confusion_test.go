package field

import "testing"

func rasterOf(cells [][]int) *Raster {
	ra := NewRaster(len(cells), len(cells[0]))
	for r := range cells {
		copy(ra.Cells[r], cells[r])
	}
	return ra
}

func TestConfusionMatrixBasics(t *testing.T) {
	truth := rasterOf([][]int{{0, 1}, {2, 2}})
	est := rasterOf([][]int{{0, 2}, {2, 1}})
	m := ConfusionMatrix(truth, est)
	if m == nil || m.Classes != 3 || m.Total != 4 {
		t.Fatalf("matrix = %+v", m)
	}
	if m.Counts[0][0] != 1 || m.Counts[1][2] != 1 || m.Counts[2][2] != 1 || m.Counts[2][1] != 1 {
		t.Errorf("counts = %v", m.Counts)
	}
	if got := m.Accuracy(); got != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", got)
	}
	if got := Agreement(truth, est); got != m.Accuracy() {
		t.Errorf("Accuracy %v disagrees with Agreement %v", m.Accuracy(), got)
	}
}

func TestConfusionShapeMismatch(t *testing.T) {
	a := NewRaster(2, 2)
	b := NewRaster(3, 2)
	if got := ConfusionMatrix(a, b); got != nil {
		t.Error("mismatched shapes should yield nil")
	}
	if got := ConfusionMatrix(nil, a); got != nil {
		t.Error("nil raster should yield nil")
	}
}

func TestRecallPrecision(t *testing.T) {
	truth := rasterOf([][]int{{1, 1}, {1, 0}})
	est := rasterOf([][]int{{1, 0}, {1, 0}})
	m := ConfusionMatrix(truth, est)
	// Class 1: 3 true, 2 correctly estimated.
	if got := m.Recall(1); got != 2.0/3 {
		t.Errorf("Recall(1) = %v, want 2/3", got)
	}
	// Class 1 estimated twice, both truly 1.
	if got := m.Precision(1); got != 1 {
		t.Errorf("Precision(1) = %v, want 1", got)
	}
	// Class 0: 1 true, 1 correct; estimated twice, 1 correct.
	if got := m.Recall(0); got != 1 {
		t.Errorf("Recall(0) = %v, want 1", got)
	}
	if got := m.Precision(0); got != 0.5 {
		t.Errorf("Precision(0) = %v, want 0.5", got)
	}
	// Missing class.
	if got := m.Recall(5); got != -1 {
		t.Errorf("Recall(5) = %v, want -1", got)
	}
	if got := m.Precision(-1); got != -1 {
		t.Errorf("Precision(-1) = %v, want -1", got)
	}
}

func TestOffByOne(t *testing.T) {
	truth := rasterOf([][]int{{0, 0}, {2, 2}})
	est := rasterOf([][]int{{1, 0}, {0, 2}})
	m := ConfusionMatrix(truth, est)
	// Two errors: 0->1 (adjacent) and 2->0 (gross): OffByOne = 0.5.
	if got := m.OffByOne(); got != 0.5 {
		t.Errorf("OffByOne = %v, want 0.5", got)
	}
	// Perfect map: OffByOne defined as 1 (no errors at all).
	perfect := ConfusionMatrix(truth, truth)
	if got := perfect.OffByOne(); got != 1 {
		t.Errorf("perfect OffByOne = %v, want 1", got)
	}
}

func TestConfusionOnRealReconstruction(t *testing.T) {
	// Iso-Map's misclassifications are overwhelmingly off-by-one: the
	// boundary is drawn slightly off, not the band misidentified.
	s := NewSeabed(DefaultSeabedConfig())
	levels := Levels{Low: 6, High: 12, Step: 2}
	truth := ClassifyRaster(s, levels, 96, 96)
	// Fabricate a shifted estimate: the same field sampled with an offset
	// (a proxy for boundary displacement).
	shifted := NewRaster(96, 96)
	for r := 0; r < 96; r++ {
		for c := 0; c < 96; c++ {
			x := (float64(c)+1.5)/96*50 + 0.3
			y := (float64(r) + 0.5) / 96 * 50
			shifted.Cells[r][c] = levels.Classify(s.Value(x, y))
		}
	}
	m := ConfusionMatrix(truth, shifted)
	if m.Accuracy() < 0.8 {
		t.Errorf("shifted accuracy = %v", m.Accuracy())
	}
	if m.OffByOne() < 0.95 {
		t.Errorf("OffByOne = %v — boundary displacement should be near-pure off-by-one", m.OffByOne())
	}
}
