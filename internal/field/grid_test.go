package field

import (
	"strings"
	"testing"
)

func TestNewGridFieldValidation(t *testing.T) {
	tests := []struct {
		name    string
		values  [][]float64
		x1, y1  float64
		wantErr bool
	}{
		{"ok", [][]float64{{1, 2}, {3, 4}}, 1, 1, false},
		{"too small", [][]float64{{1, 2}}, 1, 1, true},
		{"ragged", [][]float64{{1, 2}, {3}}, 1, 1, true},
		{"empty extent", [][]float64{{1, 2}, {3, 4}}, 0, 1, true},
		{"nil", nil, 1, 1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewGridField(tt.values, 0, 0, tt.x1, tt.y1)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestGridFieldCornersAndCenter(t *testing.T) {
	g, err := NewGridField([][]float64{{0, 1}, {2, 3}}, 0, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x, y, want float64
	}{
		{0, 0, 0}, {1, 0, 1}, {0, 1, 2}, {1, 1, 3},
		{0.5, 0.5, 1.5}, // bilinear center
		{0.5, 0, 0.5},
		{0, 0.5, 1},
	}
	for _, tt := range tests {
		if got := g.Value(tt.x, tt.y); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Value(%v,%v) = %v, want %v", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestGridFieldClampsOutside(t *testing.T) {
	g, err := NewGridField([][]float64{{0, 1}, {2, 3}}, 0, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Value(-5, -5); got != 0 {
		t.Errorf("Value(-5,-5) = %v, want 0", got)
	}
	if got := g.Value(5, 5); got != 3 {
		t.Errorf("Value(5,5) = %v, want 3", got)
	}
}

func TestGridFieldCopiesInput(t *testing.T) {
	vals := [][]float64{{0, 1}, {2, 3}}
	g, err := NewGridField(vals, 0, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	vals[0][0] = 99
	if got := g.Value(0, 0); got != 0 {
		t.Errorf("GridField aliased caller slice: Value(0,0) = %v", got)
	}
}

func TestParseGrid(t *testing.T) {
	src := `
# depth trace
1 2 3
4 5 6
`
	g, err := ParseGrid(strings.NewReader(src), 0, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != 2 || g.Cols() != 3 {
		t.Fatalf("shape = %dx%d", g.Rows(), g.Cols())
	}
	if got := g.Value(2, 1); got != 6 {
		t.Errorf("Value(2,1) = %v, want 6", got)
	}
}

func TestParseGridErrors(t *testing.T) {
	if _, err := ParseGrid(strings.NewReader("1 x\n2 3\n"), 0, 0, 1, 1); err == nil {
		t.Error("want parse error for non-numeric token")
	}
	if _, err := ParseGrid(strings.NewReader("1 2\n3\n"), 0, 0, 1, 1); err == nil {
		t.Error("want error for ragged grid")
	}
	if _, err := ParseGrid(strings.NewReader(""), 0, 0, 1, 1); err == nil {
		t.Error("want error for empty grid")
	}
}

func TestSampleFieldRoundTrip(t *testing.T) {
	s := NewSeabed(DefaultSeabedConfig())
	g, err := SampleField(s, 201, 201)
	if err != nil {
		t.Fatal(err)
	}
	// The resampled field must track the original closely at off-grid
	// points (smooth surface, dense sampling).
	for _, p := range [][2]float64{{10.3, 17.7}, {33.1, 41.9}, {5.55, 5.55}} {
		want := s.Value(p[0], p[1])
		got := g.Value(p[0], p[1])
		if !almostEqual(got, want, 0.02) {
			t.Errorf("resampled Value(%v,%v) = %v, want ~%v", p[0], p[1], got, want)
		}
	}
	if _, err := SampleField(s, 1, 10); err == nil {
		t.Error("want error for too-small sampling")
	}
}

func TestGridFieldGradient(t *testing.T) {
	// f(x, y) = x + 2y sampled exactly: gradient must be (1, 2) everywhere.
	rows, cols := 11, 11
	values := make([][]float64, rows)
	for r := range values {
		values[r] = make([]float64, cols)
		for c := range values[r] {
			x := float64(c)
			y := float64(r)
			values[r][c] = x + 2*y
		}
	}
	g, err := NewGridField(values, 0, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	grad := g.GradientAt(5, 5)
	if !almostEqual(grad.X, 1, 1e-9) || !almostEqual(grad.Y, 2, 1e-9) {
		t.Errorf("gradient = %v, want <1,2>", grad)
	}
}
