package field

import (
	"math"
	"math/rand"

	"isomap/internal/geom"
)

// SeabedConfig parameterizes the synthetic underwater-depth surface.
type SeabedConfig struct {
	// Width and Height give the field extent in normalized units. The
	// paper's evaluation field is 50 x 50 units (400 m x 400 m).
	Width  float64
	Height float64
	// BaseDepth is the depth far from any feature, in meters.
	BaseDepth float64
	// SlopeX and SlopeY tilt the seabed gently (meters per unit).
	SlopeX float64
	SlopeY float64
	// Bumps is the number of Gaussian features (shoals and deeps).
	Bumps int
	// AmpMin and AmpMax bound feature amplitudes (meters). Negative
	// amplitudes are generated too, modelling scoured channels.
	AmpMin float64
	AmpMax float64
	// SigmaMin and SigmaMax bound feature radii (units).
	SigmaMin float64
	SigmaMax float64
	// Seed drives the deterministic feature placement.
	Seed int64
}

// DefaultSeabedConfig returns the configuration used throughout the
// experiment suite: a 50x50-unit field whose depth spans roughly 4-14 m, so
// that isolevels {6, 8, 10, 12} produce a handful of closed contour
// regions, matching the structure of the paper's Fig. 1 trace.
func DefaultSeabedConfig() SeabedConfig {
	return SeabedConfig{
		Width:     50,
		Height:    50,
		BaseDepth: 9,
		SlopeX:    0.02,
		SlopeY:    -0.015,
		Bumps:     6,
		AmpMin:    2.0,
		AmpMax:    4.5,
		SigmaMin:  5,
		SigmaMax:  11,
		// Seed 2 yields a depth range of roughly 5-13.5 m, so the isolevel
		// scheme {6, 8, 10, 12} cuts the surface into several closed
		// regions, mirroring the structure of the paper's trace.
		Seed: 2,
	}
}

// bump is one Gaussian seabed feature.
type bump struct {
	cx, cy float64
	amp    float64
	sigma2 float64
}

// Seabed is a deterministic synthetic underwater-depth field: a tilted base
// plane plus a sum of Gaussian features. It implements GradientField, so
// ground-truth normals for Fig. 7's gradient-error experiment are exact.
type Seabed struct {
	cfg   SeabedConfig
	bumps []bump
}

var _ GradientField = (*Seabed)(nil)

// NewSeabed builds the synthetic seabed from cfg. The same config always
// yields the same surface.
func NewSeabed(cfg SeabedConfig) *Seabed {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Seabed{cfg: cfg}
	for i := 0; i < cfg.Bumps; i++ {
		amp := cfg.AmpMin + rng.Float64()*(cfg.AmpMax-cfg.AmpMin)
		if rng.Intn(2) == 0 {
			amp = -amp
		}
		sigma := cfg.SigmaMin + rng.Float64()*(cfg.SigmaMax-cfg.SigmaMin)
		s.bumps = append(s.bumps, bump{
			// Keep feature centers away from the border so contour regions
			// close inside the field, as the paper's theory assumes.
			cx:     cfg.Width * (0.15 + 0.7*rng.Float64()),
			cy:     cfg.Height * (0.15 + 0.7*rng.Float64()),
			amp:    amp,
			sigma2: sigma * sigma,
		})
	}
	return s
}

// Value returns the depth at (x, y) in meters.
func (s *Seabed) Value(x, y float64) float64 {
	x, y = s.clamp(x, y)
	v := s.cfg.BaseDepth + s.cfg.SlopeX*x + s.cfg.SlopeY*y
	for _, b := range s.bumps {
		dx, dy := x-b.cx, y-b.cy
		v += b.amp * math.Exp(-(dx*dx+dy*dy)/(2*b.sigma2))
	}
	return v
}

// GradientAt returns the exact analytic gradient at (x, y).
func (s *Seabed) GradientAt(x, y float64) geom.Vec {
	x, y = s.clamp(x, y)
	g := geom.Vec{X: s.cfg.SlopeX, Y: s.cfg.SlopeY}
	for _, b := range s.bumps {
		dx, dy := x-b.cx, y-b.cy
		e := b.amp * math.Exp(-(dx*dx+dy*dy)/(2*b.sigma2))
		g.X += -dx / b.sigma2 * e
		g.Y += -dy / b.sigma2 * e
	}
	return g
}

// Bounds implements Field.
func (s *Seabed) Bounds() (x0, y0, x1, y1 float64) {
	return 0, 0, s.cfg.Width, s.cfg.Height
}

func (s *Seabed) clamp(x, y float64) (float64, float64) {
	return math.Max(0, math.Min(s.cfg.Width, x)),
		math.Max(0, math.Min(s.cfg.Height, y))
}

// ValueRange scans the field on a grid and returns the observed min and max
// values; used to pick sensible query level schemes.
func ValueRange(f Field, samples int) (lo, hi float64) {
	x0, y0, x1, y1 := f.Bounds()
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i <= samples; i++ {
		for j := 0; j <= samples; j++ {
			x := x0 + (x1-x0)*float64(i)/float64(samples)
			y := y0 + (y1-y0)*float64(j)/float64(samples)
			v := f.Value(x, y)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	return lo, hi
}
