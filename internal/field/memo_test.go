package field

import (
	"sync"
	"testing"
)

func TestMemoClassifyRasterCachesPerKey(t *testing.T) {
	f := NewSeabed(DefaultSeabedConfig())
	m := NewMemo()
	levels := Levels{Low: 6, High: 12, Step: 2}

	a := m.ClassifyRaster(f, levels, 40, 40)
	b := m.ClassifyRaster(f, levels, 40, 40)
	if a != b {
		t.Error("identical keys should return the cached raster instance")
	}
	if c := m.ClassifyRaster(f, levels, 50, 50); c == a {
		t.Error("different resolutions must not share a cache slot")
	}
	if want := ClassifyRaster(f, levels, 40, 40); Agreement(a, want) != 1 {
		t.Error("cached raster differs from a direct computation")
	}
}

func TestMemoIsolinePointsCachesPerKey(t *testing.T) {
	f := NewSeabed(DefaultSeabedConfig())
	m := NewMemo()

	a := m.IsolinePoints(f, 8, 60, 60, 0.5)
	b := m.IsolinePoints(f, 8, 60, 60, 0.5)
	if len(a) == 0 {
		t.Fatal("expected isoline points at level 8")
	}
	if &a[0] != &b[0] {
		t.Error("identical keys should return the cached slice")
	}
	direct := IsolinePoints(f, 8, 60, 60, 0.5)
	if len(direct) != len(a) {
		t.Errorf("cached %d points, direct %d", len(a), len(direct))
	}
	if c := m.IsolinePoints(f, 10, 60, 60, 0.5); len(c) > 0 && &c[0] == &a[0] {
		t.Error("different levels must not share a cache slot")
	}
}

func TestMemoNilAndUncacheableFallThrough(t *testing.T) {
	f := NewSeabed(DefaultSeabedConfig())
	levels := Levels{Low: 6, High: 12, Step: 2}
	var m *Memo
	if ra := m.ClassifyRaster(f, levels, 20, 20); ra == nil {
		t.Error("nil memo should still compute")
	}
	if pts := m.IsolinePoints(f, 8, 30, 30, 0.5); len(pts) == 0 {
		t.Error("nil memo should still compute isolines")
	}
	if Cacheable(nil) {
		t.Error("nil field must not be cacheable")
	}
	if !Cacheable(f) {
		t.Error("pointer field implementations are cacheable")
	}
}

func TestMemoConcurrentAccess(t *testing.T) {
	f := NewSeabed(DefaultSeabedConfig())
	m := NewMemo()
	levels := Levels{Low: 6, High: 12, Step: 2}
	want := m.ClassifyRaster(f, levels, 30, 30)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := m.ClassifyRaster(f, levels, 30, 30); got != want {
				t.Error("concurrent lookup returned a different instance")
			}
			m.IsolinePoints(f, 8, 40, 40, 0.5)
		}()
	}
	wg.Wait()
}
