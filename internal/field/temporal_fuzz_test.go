package field

import (
	"math"
	"testing"
)

// fuzzProbe samples a snapshot at adversarial coordinates and times; an
// accepted config must answer every probe with a finite value and never
// panic — the temporal twin of FuzzGridFieldParse's loader hardening.
func fuzzProbe(t *testing.T, d DynamicField, tm float64) {
	t.Helper()
	for _, at := range []float64{tm, 0, -tm, 1e9, math.SmallestNonzeroFloat64} {
		sn := d.At(at)
		x0, y0, x1, y1 := sn.Bounds()
		for _, p := range [][2]float64{
			{(x0 + x1) / 2, (y0 + y1) / 2},
			{x0 - 1e9, y1 + 1e9},
			{x1, y0},
		} {
			v := sn.Value(p[0], p[1])
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted config produced non-finite value %v at (%g, %g), t=%g", v, p[0], p[1], at)
			}
		}
	}
}

// FuzzDriftingBumpsConfig drives NewDriftingBumps with arbitrary
// parameters: invalid configs must be rejected with an error, accepted
// ones must sample finite everywhere and reproduce deterministically.
func FuzzDriftingBumpsConfig(f *testing.F) {
	f.Add(5, 0.4, 0.3, 1.5, 3.5, 4.0, 9.0, int64(1), 2.5)
	f.Add(1, 0.0, 0.0, 0.0, 0.0, 0.1, 0.1, int64(-7), 0.0)
	f.Add(10, 100.0, 0.99, 1e300, 1e301, 1e-6, 1e6, int64(0), 1e9)
	f.Add(5, math.NaN(), 0.3, 1.0, 2.0, 1.0, 2.0, int64(3), 1.0)
	f.Add(5, 0.4, -0.1, 2.0, 1.0, 0.0, 2.0, int64(3), math.Inf(1))
	f.Fuzz(func(t *testing.T, bumps int, speed, grow, ampMin, ampMax, sigMin, sigMax float64, seed int64, tm float64) {
		cfg := DriftingBumpsConfig{
			Base: NewSeabed(DefaultSeabedConfig()), Bumps: bumps,
			Speed: speed, Grow: grow, AmpMin: ampMin, AmpMax: ampMax,
			SigmaMin: sigMin, SigmaMax: sigMax, Seed: seed,
		}
		d, err := NewDriftingBumps(cfg)
		if err != nil {
			return
		}
		if math.IsNaN(tm) || math.IsInf(tm, 0) {
			return
		}
		// Amplitudes past ~1e154 square to infinity inside exp's argument
		// arithmetic headroom; the library only guards construction-time
		// finiteness, so cap the probed magnitudes like the library's own
		// scenarios do.
		if ampMax > 1e100 || sigMax > 1e100 || speed > 1e100 {
			return
		}
		fuzzProbe(t, d, tm)
		d2, err := NewDriftingBumps(cfg)
		if err != nil {
			t.Fatalf("same config rejected on second construction: %v", err)
		}
		x0, y0, x1, y1 := cfg.Base.Bounds()
		x, y := (x0+x1)/2, (y0+y1)/2
		if a, b := d.At(tm).Value(x, y), d2.At(tm).Value(x, y); a != b {
			t.Fatalf("nondeterministic: %v != %v", a, b)
		}
	})
}

// FuzzAdvectedFrontConfig is the front scenario's rejection/probe fuzz.
func FuzzAdvectedFrontConfig(f *testing.F) {
	f.Add(3.0, 4.0, 1.5, int64(1), 2.5)
	f.Add(0.0, 1e-9, 0.0, int64(-1), 1e6)
	f.Add(math.Inf(1), 4.0, 1.0, int64(2), 0.0)
	f.Add(3.0, math.NaN(), 1.0, int64(2), 1.0)
	f.Add(-5.0, 4.0, 1e305, int64(9), 1e305)
	f.Fuzz(func(t *testing.T, amp, width, speed float64, seed int64, tm float64) {
		d, err := NewAdvectedFront(AdvectedFrontConfig{
			Base: NewSeabed(DefaultSeabedConfig()),
			Amp:  amp, Width: width, Speed: speed, Seed: seed,
		})
		if err != nil {
			return
		}
		if math.IsNaN(tm) || math.IsInf(tm, 0) {
			return
		}
		if math.Abs(amp) > 1e100 || speed > 1e100 || math.Abs(tm) > 1e100 {
			return
		}
		fuzzProbe(t, d, tm)
	})
}

// FuzzStepEventsConfig is the event-schedule scenario's rejection/probe
// fuzz.
func FuzzStepEventsConfig(f *testing.F) {
	f.Add(6, 10.0, 1.5, 3.5, 3.0, 7.0, int64(1), 2.5)
	f.Add(1, 1e-9, 0.0, 0.0, 1e-9, 1e-9, int64(-1), 1e6)
	f.Add(0, 10.0, 1.0, 2.0, 1.0, 2.0, int64(2), 0.0)
	f.Add(6, math.NaN(), 1.0, 2.0, 1.0, 2.0, int64(2), 1.0)
	f.Add(6, 10.0, 2.0, 1.0, 0.0, 7.0, int64(3), -5.0)
	f.Fuzz(func(t *testing.T, events int, horizon, ampMin, ampMax, radMin, radMax float64, seed int64, tm float64) {
		d, err := NewStepEvents(StepEventsConfig{
			Base: NewSeabed(DefaultSeabedConfig()), Events: events, Horizon: horizon,
			AmpMin: ampMin, AmpMax: ampMax, RadMin: radMin, RadMax: radMax, Seed: seed,
		})
		if err != nil {
			return
		}
		if math.IsNaN(tm) || math.IsInf(tm, 0) {
			return
		}
		if ampMax > 1e100 || radMax > 1e100 {
			return
		}
		fuzzProbe(t, d, tm)
	})
}
