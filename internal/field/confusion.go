package field

// Confusion is a per-class confusion matrix between a ground-truth raster
// and an estimate: Counts[t][e] counts cells whose true class is t and
// estimated class is e. It refines the scalar mapping-accuracy metric,
// showing which contour bands a protocol confuses.
type Confusion struct {
	// Classes is the matrix dimension (max class + 1 over both rasters).
	Classes int
	// Counts[t][e] is the cell count with truth t, estimate e.
	Counts [][]int
	// Total is the number of compared cells.
	Total int
}

// ConfusionMatrix builds the confusion matrix of two same-shape rasters,
// or nil when the shapes differ.
func ConfusionMatrix(truth, estimate *Raster) *Confusion {
	if truth == nil || estimate == nil ||
		truth.Rows != estimate.Rows || truth.Cols != estimate.Cols {
		return nil
	}
	classes := 1
	for r := 0; r < truth.Rows; r++ {
		for c := 0; c < truth.Cols; c++ {
			if v := truth.Cells[r][c] + 1; v > classes {
				classes = v
			}
			if v := estimate.Cells[r][c] + 1; v > classes {
				classes = v
			}
		}
	}
	m := &Confusion{Classes: classes, Total: truth.Rows * truth.Cols}
	m.Counts = make([][]int, classes)
	for i := range m.Counts {
		m.Counts[i] = make([]int, classes)
	}
	for r := 0; r < truth.Rows; r++ {
		for c := 0; c < truth.Cols; c++ {
			t := clampClass(truth.Cells[r][c], classes)
			e := clampClass(estimate.Cells[r][c], classes)
			m.Counts[t][e]++
		}
	}
	return m
}

func clampClass(v, classes int) int {
	if v < 0 {
		return 0
	}
	if v >= classes {
		return classes - 1
	}
	return v
}

// Accuracy returns the fraction of diagonal cells — identical to the
// Agreement metric.
func (m *Confusion) Accuracy() float64 {
	if m == nil || m.Total == 0 {
		return 0
	}
	diag := 0
	for i := 0; i < m.Classes; i++ {
		diag += m.Counts[i][i]
	}
	return float64(diag) / float64(m.Total)
}

// Recall returns the fraction of true class-t cells correctly estimated,
// or -1 when the class never occurs in the truth.
func (m *Confusion) Recall(t int) float64 {
	if m == nil || t < 0 || t >= m.Classes {
		return -1
	}
	total := 0
	for e := 0; e < m.Classes; e++ {
		total += m.Counts[t][e]
	}
	if total == 0 {
		return -1
	}
	return float64(m.Counts[t][t]) / float64(total)
}

// Precision returns the fraction of estimated class-e cells that are
// truly e, or -1 when the class is never estimated.
func (m *Confusion) Precision(e int) float64 {
	if m == nil || e < 0 || e >= m.Classes {
		return -1
	}
	total := 0
	for t := 0; t < m.Classes; t++ {
		total += m.Counts[t][e]
	}
	if total == 0 {
		return -1
	}
	return float64(m.Counts[e][e]) / float64(total)
}

// OffByOne returns the fraction of misclassified cells whose estimate was
// an adjacent contour band — the benign error mode for contour maps (a
// boundary drawn slightly off) as opposed to gross misclassification.
func (m *Confusion) OffByOne() float64 {
	if m == nil {
		return 0
	}
	wrong, nearMiss := 0, 0
	for t := 0; t < m.Classes; t++ {
		for e := 0; e < m.Classes; e++ {
			if t == e {
				continue
			}
			wrong += m.Counts[t][e]
			if t-e == 1 || e-t == 1 {
				nearMiss += m.Counts[t][e]
			}
		}
	}
	if wrong == 0 {
		return 1
	}
	return float64(nearMiss) / float64(wrong)
}
