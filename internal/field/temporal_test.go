package field

import (
	"math"
	"testing"
)

func temporalBase(t *testing.T) Field {
	t.Helper()
	return NewSeabed(DefaultSeabedConfig())
}

// sampleGrid probes a snapshot on a fixed lattice and returns the raw
// values — the byte-level identity material for determinism checks.
func sampleGrid(f Field, n int) []float64 {
	x0, y0, x1, y1 := f.Bounds()
	out := make([]float64, 0, n*n)
	for i := 0; i < n; i++ {
		y := y0 + (y1-y0)*float64(i)/float64(n-1)
		for j := 0; j < n; j++ {
			x := x0 + (x1-x0)*float64(j)/float64(n-1)
			out = append(out, f.Value(x, y))
		}
	}
	return out
}

// TestTemporalDeterminism is the library's core contract: for every
// registered scenario, the same (seed, t) yields byte-identical samples
// from independently constructed instances — nothing carries RNG state
// between At calls, so replays, shard widths and checkpoint restores all
// see the same field.
func TestTemporalDeterminism(t *testing.T) {
	base := temporalBase(t)
	for _, kind := range TemporalKinds() {
		t.Run(kind, func(t *testing.T) {
			a, err := NewTemporal(kind, base, 1, 42)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewTemporal(kind, base, 1, 42)
			if err != nil {
				t.Fatal(err)
			}
			for _, tm := range []float64{0, 0.5, 3.75, 100} {
				// Sample b at out-of-order times first: At must be a pure
				// function of t, not of call history.
				want := sampleGrid(b.At(tm), 16)
				_ = b.At(tm / 2)
				got := sampleGrid(a.At(tm), 16)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("t=%g sample %d: %v != %v", tm, i, got[i], want[i])
					}
					if math.IsNaN(got[i]) || math.IsInf(got[i], 0) {
						t.Fatalf("t=%g sample %d is not finite: %v", tm, i, got[i])
					}
				}
			}
		})
	}
}

// TestTemporalSeedsDiffer guards against a collapsed stream derivation:
// different seeds must draw different scenarios (for the seeded kinds).
func TestTemporalSeedsDiffer(t *testing.T) {
	base := temporalBase(t)
	for _, kind := range []string{"drift", "front", "step"} {
		a, err := NewTemporal(kind, base, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewTemporal(kind, base, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		// step schedules may coincide early; compare late, when events and
		// drifts have fully played out.
		sa, sb := sampleGrid(a.At(9), 16), sampleGrid(b.At(9), 16)
		same := true
		for i := range sa {
			if sa[i] != sb[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 produced identical fields", kind)
		}
	}
}

// TestTemporalEvolves: each scenario must actually change over time —
// a frozen field would silently void every tracking experiment.
func TestTemporalEvolves(t *testing.T) {
	base := temporalBase(t)
	for _, kind := range TemporalKinds() {
		d, err := NewTemporal(kind, base, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		s0, s1 := sampleGrid(d.At(0.5), 16), sampleGrid(d.At(5), 16)
		moved := false
		for i := range s0 {
			if s0[i] != s1[i] {
				moved = true
				break
			}
		}
		if !moved {
			t.Errorf("%s: field identical at t=0.5 and t=5", kind)
		}
	}
}

// TestStepEventsAccumulate pins the step scenario's semantics: events
// appear at their drawn times and persist, so the active set grows
// monotonically with t and is complete past the horizon.
func TestStepEventsAccumulate(t *testing.T) {
	base := temporalBase(t)
	s, err := NewStepEvents(StepEventsConfig{
		Base: base, Events: 6, Horizon: 10,
		AmpMin: 1.5, AmpMax: 3.5, RadMin: 3, RadMax: 7, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, tm := range []float64{0, 2.5, 5, 7.5, 10, 20} {
		sn := s.At(tm).(*stepSnapshot)
		if len(sn.active) < prev {
			t.Fatalf("active events shrank: %d -> %d at t=%g", prev, len(sn.active), tm)
		}
		prev = len(sn.active)
	}
	if prev != 6 {
		t.Fatalf("past the horizon %d of 6 events active", prev)
	}
}

// TestReflectInto checks the drift fold: results stay inside the band,
// endpoints are fixed points, and the fold is continuous at the border
// (a bounce, not a wrap).
func TestReflectInto(t *testing.T) {
	for _, tc := range []struct{ p, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-3, 0, 10, 3},
		{13, 0, 10, 7},
		{23, 0, 10, 3},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
		{5, 5, 5, 5}, // degenerate band
	} {
		if got := reflectInto(tc.p, tc.lo, tc.hi); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("reflectInto(%g, %g, %g) = %g, want %g", tc.p, tc.lo, tc.hi, got, tc.want)
		}
	}
}

// TestTemporalConfigValidation enumerates the rejection surface: nil
// bases, non-finite and out-of-range parameters must all fail loudly at
// construction, never at sampling time.
func TestTemporalConfigValidation(t *testing.T) {
	base := temporalBase(t)
	nan := math.NaN()
	if _, err := NewTemporal("vortex", base, 1, 1); err == nil {
		t.Error("accepted unknown scenario kind")
	}
	if _, err := NewTemporal("drift", nil, 1, 1); err == nil {
		t.Error("accepted nil base")
	}
	if _, err := NewTemporal("drift", base, nan, 1); err == nil {
		t.Error("accepted NaN speed")
	}
	for i, cfg := range []DriftingBumpsConfig{
		{Bumps: 5, Speed: 1, AmpMin: 1, AmpMax: 2, SigmaMin: 1, SigmaMax: 2},                       // nil base
		{Base: base, Bumps: 0, Speed: 1, AmpMin: 1, AmpMax: 2, SigmaMin: 1, SigmaMax: 2},           // no bumps
		{Base: base, Bumps: 5, Speed: nan, AmpMin: 1, AmpMax: 2, SigmaMin: 1, SigmaMax: 2},         // NaN speed
		{Base: base, Bumps: 5, Speed: -1, AmpMin: 1, AmpMax: 2, SigmaMin: 1, SigmaMax: 2},          // negative speed
		{Base: base, Bumps: 5, Speed: 1, Grow: 1, AmpMin: 1, AmpMax: 2, SigmaMin: 1, SigmaMax: 2},  // Grow at 1
		{Base: base, Bumps: 5, Speed: 1, AmpMin: 2, AmpMax: 1, SigmaMin: 1, SigmaMax: 2},           // inverted amps
		{Base: base, Bumps: 5, Speed: 1, AmpMin: 1, AmpMax: 2, SigmaMin: 0, SigmaMax: 2},           // zero sigma
		{Base: base, Bumps: 5, Speed: 1, AmpMin: 1, AmpMax: math.Inf(1), SigmaMin: 1, SigmaMax: 2}, // infinite amp
	} {
		if _, err := NewDriftingBumps(cfg); err == nil {
			t.Errorf("drift case %d: invalid config accepted", i)
		}
	}
	for i, cfg := range []AdvectedFrontConfig{
		{Amp: 3, Width: 4, Speed: 1},                       // nil base
		{Base: base, Amp: 3, Width: 0, Speed: 1},           // zero width
		{Base: base, Amp: 3, Width: 4, Speed: -1},          // negative speed
		{Base: base, Amp: nan, Width: 4, Speed: 1},         // NaN amp
		{Base: base, Amp: 3, Width: math.Inf(1), Speed: 1}, // infinite width
	} {
		if _, err := NewAdvectedFront(cfg); err == nil {
			t.Errorf("front case %d: invalid config accepted", i)
		}
	}
	for i, cfg := range []StepEventsConfig{
		{Events: 6, Horizon: 10, AmpMin: 1, AmpMax: 2, RadMin: 1, RadMax: 2},              // nil base
		{Base: base, Events: 0, Horizon: 10, AmpMin: 1, AmpMax: 2, RadMin: 1, RadMax: 2},  // no events
		{Base: base, Events: 6, Horizon: 0, AmpMin: 1, AmpMax: 2, RadMin: 1, RadMax: 2},   // zero horizon
		{Base: base, Events: 6, Horizon: nan, AmpMin: 1, AmpMax: 2, RadMin: 1, RadMax: 2}, // NaN horizon
		{Base: base, Events: 6, Horizon: 10, AmpMin: 2, AmpMax: 1, RadMin: 1, RadMax: 2},  // inverted amps
		{Base: base, Events: 6, Horizon: 10, AmpMin: 1, AmpMax: 2, RadMin: 0, RadMax: 2},  // zero radius
	} {
		if _, err := NewStepEvents(cfg); err == nil {
			t.Errorf("step case %d: invalid config accepted", i)
		}
	}
}
