package field

import "testing"

func TestClassifyRasterPlane(t *testing.T) {
	levels := Levels{Low: 2, High: 8, Step: 2} // isolevels 2,4,6,8
	ra := ClassifyRaster(planeField{}, levels, 10, 10)
	// Column c has x-center (c+0.5); region index = #levels <= x.
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			x := (float64(c) + 0.5)
			want := levels.Classify(x)
			if got := ra.Cells[r][c]; got != want {
				t.Fatalf("cell (%d,%d) = %d, want %d", r, c, got, want)
			}
		}
	}
}

func TestAgreement(t *testing.T) {
	a := NewRaster(2, 2)
	b := NewRaster(2, 2)
	if got := Agreement(a, b); got != 1 {
		t.Errorf("identical Agreement = %v, want 1", got)
	}
	b.Cells[0][0] = 1
	if got := Agreement(a, b); got != 0.75 {
		t.Errorf("Agreement = %v, want 0.75", got)
	}
}

func TestAgreementShapeMismatch(t *testing.T) {
	a := NewRaster(2, 2)
	b := NewRaster(3, 2)
	if got := Agreement(a, b); got != 0 {
		t.Errorf("mismatched Agreement = %v, want 0", got)
	}
	if got := Agreement(nil, a); got != 0 {
		t.Errorf("nil Agreement = %v, want 0", got)
	}
}

func TestCellCenter(t *testing.T) {
	ra := NewRaster(10, 10)
	x, y := ra.CellCenter(planeField{}, 0, 0)
	if !almostEqual(x, 0.5, 1e-12) || !almostEqual(y, 0.5, 1e-12) {
		t.Errorf("CellCenter(0,0) = (%v,%v)", x, y)
	}
	x, y = ra.CellCenter(planeField{}, 9, 9)
	if !almostEqual(x, 9.5, 1e-12) || !almostEqual(y, 9.5, 1e-12) {
		t.Errorf("CellCenter(9,9) = (%v,%v)", x, y)
	}
}

func TestClassifyRasterSeabedSelfAgreement(t *testing.T) {
	s := NewSeabed(DefaultSeabedConfig())
	levels := Levels{Low: 6, High: 12, Step: 2}
	a := ClassifyRaster(s, levels, 64, 64)
	b := ClassifyRaster(s, levels, 64, 64)
	if got := Agreement(a, b); got != 1 {
		t.Errorf("self Agreement = %v, want 1", got)
	}
	// The map must contain more than one region class (a non-trivial map).
	seen := make(map[int]bool)
	for _, row := range a.Cells {
		for _, v := range row {
			seen[v] = true
		}
	}
	if len(seen) < 2 {
		t.Errorf("classified raster has %d distinct classes, want >= 2", len(seen))
	}
}
