package field

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevelsClassifyConsistentWithValuesProperty(t *testing.T) {
	l := Levels{Low: 6, High: 12, Step: 2}
	values := l.Values()
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		v := math.Mod(raw, 30)
		c := l.Classify(v)
		// c equals the count of isolevels <= v.
		want := 0
		for _, lv := range values {
			if lv <= v+1e-12 {
				want++
			}
		}
		// Floating point at exact boundaries may differ by the epsilon
		// convention; accept the floor-based count too.
		return c == want || c == want-1 || c == want+1 && onBoundary(v, values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func onBoundary(v float64, values []float64) bool {
	for _, lv := range values {
		if math.Abs(v-lv) < 1e-9 {
			return true
		}
	}
	return false
}

func TestLevelsNearestIsNearestProperty(t *testing.T) {
	l := Levels{Low: 0, High: 20, Step: 2.5}
	values := l.Values()
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		v := math.Mod(raw, 40)
		got, idx := l.Nearest(v)
		if idx < 0 || idx >= len(values) || values[idx] != got {
			return false
		}
		for _, lv := range values {
			if math.Abs(lv-v) < math.Abs(got-v)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGridFieldInterpolationBoundsProperty(t *testing.T) {
	// Bilinear interpolation never exceeds the sample range.
	g, err := NewGridField([][]float64{
		{1, 5, 2},
		{7, 3, 9},
		{4, 8, 6},
	}, 0, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rx, ry float64) bool {
		if math.IsNaN(rx) || math.IsNaN(ry) || math.IsInf(rx, 0) || math.IsInf(ry, 0) {
			return true
		}
		x := math.Mod(math.Abs(rx), 2)
		y := math.Mod(math.Abs(ry), 2)
		v := g.Value(x, y)
		return v >= 1-1e-9 && v <= 9+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSeabedValueWithinConfiguredEnvelopeProperty(t *testing.T) {
	cfg := DefaultSeabedConfig()
	s := NewSeabed(cfg)
	// |value - base - slope| <= sum of bump amplitudes.
	maxBump := float64(cfg.Bumps) * cfg.AmpMax
	f := func(rx, ry float64) bool {
		if math.IsNaN(rx) || math.IsNaN(ry) || math.IsInf(rx, 0) || math.IsInf(ry, 0) {
			return true
		}
		x := math.Mod(math.Abs(rx), cfg.Width)
		y := math.Mod(math.Abs(ry), cfg.Height)
		base := cfg.BaseDepth + cfg.SlopeX*x + cfg.SlopeY*y
		return math.Abs(s.Value(x, y)-base) <= maxBump+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestClassifyRasterValuesInRangeProperty(t *testing.T) {
	s := NewSeabed(DefaultSeabedConfig())
	l := Levels{Low: 6, High: 12, Step: 2}
	ra := ClassifyRaster(s, l, 50, 50)
	max := l.Count()
	for _, row := range ra.Cells {
		for _, v := range row {
			if v < 0 || v > max {
				t.Fatalf("class %d outside [0, %d]", v, max)
			}
		}
	}
}
