package field

import (
	"math"
	"testing"

	"isomap/internal/geom"
)

// planeField is f(x,y) = x over [0,10]^2; its isoline at level c is the
// vertical line x = c.
type planeField struct{}

func (planeField) Value(x, y float64) float64       { return x }
func (planeField) Bounds() (x0, y0, x1, y1 float64) { return 0, 0, 10, 10 }

// coneField is f(x,y) = distance from center; isolines are circles.
type coneField struct{}

func (coneField) Value(x, y float64) float64       { return math.Hypot(x-5, y-5) }
func (coneField) Bounds() (x0, y0, x1, y1 float64) { return 0, 0, 10, 10 }

func TestIsolineSegmentsVerticalLine(t *testing.T) {
	segs := IsolineSegments(planeField{}, 4, 20, 20)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	for _, s := range segs {
		if !almostEqual(s.A.X, 4, 1e-9) || !almostEqual(s.B.X, 4, 1e-9) {
			t.Errorf("segment %v not on x=4", s)
		}
	}
	if got := IsolineLength(planeField{}, 4, 20, 20); !almostEqual(got, 10, 1e-6) {
		t.Errorf("isoline length = %v, want 10", got)
	}
}

func TestIsolineSegmentsCircle(t *testing.T) {
	const r = 3.0
	segs := IsolineSegments(coneField{}, r, 200, 200)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	for _, s := range segs {
		for _, p := range []geom.Point{s.A, s.B} {
			d := math.Hypot(p.X-5, p.Y-5)
			if math.Abs(d-r) > 0.05 {
				t.Fatalf("point %v at radius %v, want %v", p, d, r)
			}
		}
	}
	// Total length approximates the circumference 2*pi*r.
	got := IsolineLength(coneField{}, r, 200, 200)
	want := 2 * math.Pi * r
	if math.Abs(got-want) > 0.1 {
		t.Errorf("circle length = %v, want ~%v", got, want)
	}
}

func TestIsolineNoCrossing(t *testing.T) {
	// Level outside the value range yields nothing.
	if segs := IsolineSegments(planeField{}, 100, 10, 10); segs != nil {
		t.Errorf("out-of-range isoline = %v segments", len(segs))
	}
	if segs := IsolineSegments(planeField{}, -1, 10, 10); segs != nil {
		t.Errorf("below-range isoline = %v segments", len(segs))
	}
}

func TestIsolineDegenerateGrid(t *testing.T) {
	if segs := IsolineSegments(planeField{}, 5, 0, 10); segs != nil {
		t.Error("zero-resolution grid should yield nil")
	}
}

func TestIsolinePointsSpacing(t *testing.T) {
	pts := IsolinePoints(planeField{}, 4, 20, 20, 0.25)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, p := range pts {
		if !almostEqual(p.X, 4, 1e-9) {
			t.Errorf("point %v off isoline", p)
		}
	}
}

func TestIsolinePointsOnSeabedMatchLevel(t *testing.T) {
	s := NewSeabed(DefaultSeabedConfig())
	pts := IsolinePoints(s, 10, 150, 150, 0.5)
	if len(pts) == 0 {
		t.Skip("level 10 not crossed by this surface")
	}
	for _, p := range pts {
		if v := s.Value(p.X, p.Y); math.Abs(v-10) > 0.2 {
			t.Errorf("isoline point %v has value %v, want ~10", p, v)
		}
	}
}

func TestIsolineSaddleHandled(t *testing.T) {
	// A saddle surface exercises the ambiguous marching-squares cases.
	saddle := gridFromFunc(21, 21, func(x, y float64) float64 {
		return (x - 5) * (y - 5)
	})
	segs := IsolineSegments(saddle, 0.5, 40, 40)
	if len(segs) == 0 {
		t.Fatal("saddle isoline empty")
	}
	for _, s := range segs {
		m := s.Mid()
		if v := saddle.Value(m.X, m.Y); math.Abs(v-0.5) > 0.6 {
			t.Errorf("saddle segment midpoint value %v far from level", v)
		}
	}
}

// gridFromFunc builds a GridField over [0,10]^2 sampling fn.
func gridFromFunc(rows, cols int, fn func(x, y float64) float64) *GridField {
	values := make([][]float64, rows)
	for r := range values {
		values[r] = make([]float64, cols)
		y := 10 * float64(r) / float64(rows-1)
		for c := range values[r] {
			x := 10 * float64(c) / float64(cols-1)
			values[r][c] = fn(x, y)
		}
	}
	g, err := NewGridField(values, 0, 0, 10, 10)
	if err != nil {
		panic(err)
	}
	return g
}

func TestInterp(t *testing.T) {
	if got := interp(0, 10, 5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("interp = %v, want 0.5", got)
	}
	if got := interp(3, 3, 3); got != 0.5 {
		t.Errorf("flat interp = %v, want 0.5", got)
	}
	if got := interp(0, 10, -5); got != 0 {
		t.Errorf("clamped low = %v", got)
	}
	if got := interp(0, 10, 15); got != 1 {
		t.Errorf("clamped high = %v", got)
	}
}
