package field

import "testing"

func TestSiltingDepositionGrows(t *testing.T) {
	base := NewSeabed(DefaultSeabedConfig())
	dyn := DefaultSilting(base)
	// On the band center the depth decreases monotonically in time.
	x, y := 27.5, 27.5 // x+y = 55 = BandCenter
	prev := dyn.At(0).Value(x, y)
	if prev != base.Value(x, y) {
		t.Errorf("t=0 should equal the base field")
	}
	for _, tm := range []float64{1, 2, 4, 5, 6, 8} {
		v := dyn.At(tm).Value(x, y)
		if v >= prev {
			t.Fatalf("depth did not shallow at t=%v: %v >= %v", tm, v, prev)
		}
		prev = v
	}
}

func TestSiltingStormAccelerates(t *testing.T) {
	base := NewSeabed(DefaultSeabedConfig())
	dyn := DefaultSilting(base)
	x, y := 27.5, 27.5
	// Deposition per unit time during the storm (t in [4,6]) exceeds the
	// calm rate.
	calm := dyn.At(1).Value(x, y) - dyn.At(2).Value(x, y)
	storm := dyn.At(4).Value(x, y) - dyn.At(5).Value(x, y)
	if storm <= calm {
		t.Errorf("storm deposition %v not above calm %v", storm, calm)
	}
}

func TestSiltingFarFromBandUnchanged(t *testing.T) {
	base := NewSeabed(DefaultSeabedConfig())
	dyn := DefaultSilting(base)
	// A corner far from the x+y=55 band barely changes.
	v0 := base.Value(2, 2)
	v8 := dyn.At(8).Value(2, 2)
	if d := v0 - v8; d > 0.05 {
		t.Errorf("far corner shallowed by %v, want ~0", d)
	}
}

func TestSiltingClampsAtMinDepth(t *testing.T) {
	base := NewSeabed(DefaultSeabedConfig())
	dyn := DefaultSilting(base)
	snap := dyn.At(1e6)
	if v := snap.Value(27.5, 27.5); v != 0.5 {
		t.Errorf("depth = %v, want clamped at MinDepth 0.5", v)
	}
}

func TestSiltingBoundsMatchBase(t *testing.T) {
	base := NewSeabed(DefaultSeabedConfig())
	snap := DefaultSilting(base).At(3)
	bx0, by0, bx1, by1 := base.Bounds()
	x0, y0, x1, y1 := snap.Bounds()
	if x0 != bx0 || y0 != by0 || x1 != bx1 || y1 != by1 {
		t.Error("snapshot bounds differ from base")
	}
}

func TestSiltingNegativeTimeIsBase(t *testing.T) {
	base := NewSeabed(DefaultSeabedConfig())
	dyn := DefaultSilting(base)
	if got, want := dyn.At(-5).Value(27.5, 27.5), base.Value(27.5, 27.5); got != want {
		t.Errorf("t<0 Value = %v, want base %v", got, want)
	}
}
