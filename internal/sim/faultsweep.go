package sim

import (
	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/desim"
	"isomap/internal/faults"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/network"
)

// FaultPoint is one cell of the fault-injection sweep grid: a channel
// loss rate with a burstiness shape, plus a fraction of nodes crashing
// mid-round.
type FaultPoint struct {
	Loss  float64 `json:"loss"`
	Burst float64 `json:"burstiness"`
	Crash float64 `json:"crashFraction"`
}

// DefaultFaultPoints is the sweep grid of ext-faults: a fault-free
// control, a loss ramp, two burstiness shapes at fixed loss, a crash
// ramp, and one combined worst case.
func DefaultFaultPoints() []FaultPoint {
	return []FaultPoint{
		{},
		{Loss: 0.1},
		{Loss: 0.2},
		{Loss: 0.4},
		{Loss: 0.2, Burst: 0.5},
		{Loss: 0.2, Burst: 0.8},
		{Crash: 0.05},
		{Crash: 0.15},
		{Loss: 0.2, Burst: 0.5, Crash: 0.1},
	}
}

// SmokeFaultPoints is the single-cell grid the CI smoke step runs: one
// lossy, bursty, crashing round that exercises every fault path at once.
func SmokeFaultPoints() []FaultPoint {
	return []FaultPoint{{Loss: 0.2, Burst: 0.5, Crash: 0.05}}
}

// FaultPointResult is the averaged outcome of one sweep cell, in
// machine-readable form for BENCH_FAULTS.json. Fidelity is measured
// against the same seed's fault-free map — not against ground truth — so
// the numbers isolate what the faults cost, independent of the
// protocol's intrinsic mapping error. Metrics that average to -1 were
// not applicable in any run (e.g. the Hausdorff distance when a level's
// boundary vanished entirely).
type FaultPointResult struct {
	FaultPoint
	// DeliveryRatio is reports delivered under faults over reports
	// delivered fault-free on the same deployment and seed.
	DeliveryRatio float64 `json:"deliveryRatio"`
	// RetriesPerFrame is the mean retransmission count per data frame:
	// the latency/energy price of pushing through the lossy channel.
	RetriesPerFrame float64 `json:"retriesPerFrame"`
	// ReportDrops counts report batches abandoned after exhausting
	// retries or their deadline (each is re-queued once; a drop is not
	// necessarily a loss).
	ReportDrops float64 `json:"reportDrops"`
	// Crashed, Repairs and Severed trace the crash schedule's effect:
	// nodes killed, successful re-parenting events, and nodes left with
	// no alive upward neighbor.
	Crashed float64 `json:"crashedNodes"`
	Repairs float64 `json:"routeRepairs"`
	Severed float64 `json:"severedNodes"`
	// EnergyFactor is total transmitted bytes under faults over the
	// fault-free total: the retry/repair overhead in energy terms.
	EnergyFactor float64 `json:"energyFactor"`
	// Misclassification is 1 - raster agreement between the faulted map
	// and the same seed's fault-free map.
	Misclassification float64 `json:"misclassification"`
	// MeanHausdorff averages the per-isolevel Hausdorff distances
	// between the faulted and fault-free boundary estimates.
	MeanHausdorff float64 `json:"meanHausdorffVsFaultFree"`
}

// faultSweepScenario is the deployment the fault sweep runs on: the
// paper's density-1 packet-level scenario (400 nodes over a 20x20
// field), varied only by seed.
func faultSweepScenario(seed int64) Scenario {
	return Scenario{Nodes: 400, FieldSide: 20, Seed: seed}
}

// faultRadioConfig is the sweep's radio: the defaults plus a per-frame
// deadline, so a frame stuck behind a dead parent surfaces as a drop in
// bounded time instead of riding out the full exponential-backoff tail.
func faultRadioConfig() desim.RadioConfig {
	cfg := desim.DefaultRadioConfig()
	cfg.FrameDeadline = 1.5
	return cfg
}

// faultPlanConfig materializes a sweep point as a fault plan config for
// one (point, seed) cell. The plan seed folds both coordinates in, so
// every cell draws an independent — and, for a fixed cell, reproducible —
// fault realization. The sink is protected: a dead sink measures nothing.
func faultPlanConfig(p FaultPoint, point int, seed int64, sink network.NodeID) faults.Config {
	kind := faults.ChannelPerfect
	switch {
	case p.Loss > 0 && p.Burst > 0:
		kind = faults.ChannelGilbertElliott
	case p.Loss > 0:
		kind = faults.ChannelBernoulli
	}
	cfg := faults.Config{
		Seed:    seed*1_000_003 + int64(point),
		Channel: kind, LossRate: p.Loss, Burstiness: p.Burst,
		Protect: []network.NodeID{sink},
	}
	if p.Crash > 0 {
		// Crashes land while the round is in full swing: after the query
		// flood has spread but before collection winds down.
		cfg.CrashFraction = p.Crash
		cfg.CrashStart, cfg.CrashEnd = 0.05, 0.6
	}
	return cfg
}

// faultMap reconstructs the sink-side contour map from a round's
// delivered reports. Degenerate inputs (no reports, a single report per
// level) reconstruct to empty or partial maps, never panic.
func faultMap(env *Env, delivered []core.Report) *contour.Map {
	sinkValue := env.Network.Node(env.Tree.Root()).Value
	return contour.Reconstruct(delivered, env.Query.Levels, field.BoundsRect(env.Field),
		sinkValue, contour.Options{Regulate: env.Scenario.Regulate})
}

// faultBaseline is one seed's fault-free reference round, shared by
// every sweep point at that seed.
type faultBaseline struct {
	delivered  int
	txBytes    int64
	raster     *field.Raster
	boundaries [][]geom.Point
}

func (r *Runner) faultBaseline(seed int64) (*faultBaseline, error) {
	env, err := r.Build(faultSweepScenario(seed))
	if err != nil {
		return nil, err
	}
	res, err := desim.RunFullRound(env.Tree, env.Field, env.Query, *env.Scenario.Filter, faultRadioConfig())
	if err != nil {
		return nil, err
	}
	m := faultMap(env, res.Delivered)
	b := &faultBaseline{
		delivered: len(res.Delivered),
		txBytes:   res.Counters.TotalTxBytes(),
		raster:    env.estRaster(m),
	}
	for i := range env.Scenario.Levels.Values() {
		b.boundaries = append(b.boundaries, m.BoundaryPoints(i, 0.5))
	}
	return b, nil
}

// faultCell runs one (point, seed) cell under its fault plan and scores
// it against the seed's fault-free baseline. The metric vector aligns
// with faultMetricCount and the FaultPointResult fields.
const faultMetricCount = 9

func (r *Runner) faultCell(p FaultPoint, point int, seed int64, base *faultBaseline) ([]float64, error) {
	env, err := r.Build(faultSweepScenario(seed))
	if err != nil {
		return nil, err
	}
	plan, err := faults.New(faultPlanConfig(p, point, seed, env.Tree.Root()), env.Network.Len())
	if err != nil {
		return nil, err
	}
	res, err := desim.RunFullRoundFaults(env.Tree, env.Field, env.Query, *env.Scenario.Filter, faultRadioConfig(), plan)
	if err != nil {
		return nil, err
	}
	m := faultMap(env, res.Delivered)

	delivery := -1.0
	if base.delivered > 0 {
		delivery = float64(len(res.Delivered)) / float64(base.delivered)
	}
	retries := float64(res.Radio.Retries) / float64(max(res.Radio.DataSent, 1))
	energy := float64(res.Counters.TotalTxBytes()) / float64(max(base.txBytes, 1))
	misclass := 1 - field.Agreement(base.raster, env.estRaster(m))
	var hSum float64
	hCount := 0
	for i := range env.Scenario.Levels.Values() {
		basePts := base.boundaries[i]
		estPts := m.BoundaryPoints(i, 0.5)
		if len(basePts) == 0 || len(estPts) == 0 {
			continue
		}
		if h := geom.HausdorffDistance(basePts, estPts); h >= 0 {
			hSum += h
			hCount++
		}
	}
	hausdorff := -1.0
	if hCount > 0 {
		hausdorff = hSum / float64(hCount)
	}
	return []float64{
		delivery,
		retries,
		float64(res.ReportDrops),
		float64(res.Crashed),
		float64(res.Repairs),
		float64(res.Severed),
		energy,
		misclass,
		hausdorff,
	}, nil
}

// ExtFaultSweepResults runs the fault-injection sweep over the given
// grid, averaging each point over runs seeds, and returns the
// machine-readable results. Baseline (fault-free) rounds are computed
// once per seed and shared across every point; all (point, seed) cells
// then fan out over the runner's pool, so the output is byte-identical
// at any -parallel width.
func ExtFaultSweepResults(runs int, points []FaultPoint) ([]FaultPointResult, error) {
	return defaultRunner().ExtFaultSweepResults(runs, points)
}

// ExtFaultSweepResults is the Runner form of the package-level function.
func (r *Runner) ExtFaultSweepResults(runs int, points []FaultPoint) ([]FaultPointResult, error) {
	if runs < 1 {
		runs = 1
	}
	bases, err := runJobs(r, runs, func(i int) (*faultBaseline, error) {
		return r.faultBaseline(int64(i) + 1)
	})
	if err != nil {
		return nil, err
	}
	avgs, err := sweepAverage(r, len(points), runs, func(point int, seed int64) ([]float64, error) {
		return r.faultCell(points[point], point, seed, bases[seed-1])
	})
	if err != nil {
		return nil, err
	}
	out := make([]FaultPointResult, len(points))
	for i, v := range avgs {
		if len(v) != faultMetricCount {
			continue // point failed in every run; keep zero metrics
		}
		out[i] = FaultPointResult{
			FaultPoint:        points[i],
			DeliveryRatio:     v[0],
			RetriesPerFrame:   v[1],
			ReportDrops:       v[2],
			Crashed:           v[3],
			Repairs:           v[4],
			Severed:           v[5],
			EnergyFactor:      v[6],
			Misclassification: v[7],
			MeanHausdorff:     v[8],
		}
	}
	return out, nil
}

// ExtFaultSweep runs Iso-Map's packet-level round under injected faults —
// lossy and bursty channels, mid-round node crashes with route repair —
// and reports delivery, overhead and map fidelity relative to the
// fault-free round on the same deployments.
func ExtFaultSweep(runs int) (*Table, error) { return defaultRunner().ExtFaultSweep(runs) }

// ExtFaultSweep is the Runner form of the package-level function.
func (r *Runner) ExtFaultSweep(runs int) (*Table, error) {
	results, err := r.ExtFaultSweepResults(runs, DefaultFaultPoints())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-faults",
		Title: "Fault injection: delivery, overhead and map fidelity vs fault-free (Iso-Map, packet level)",
		Columns: []string{
			"loss", "burst", "crash", "delivery", "retries/frame", "drops",
			"crashed", "repairs", "severed", "energy x", "misclass", "hausdorff",
		},
	}
	for _, res := range results {
		t.AddRow(res.Loss, res.Burst, res.Crash, res.DeliveryRatio,
			res.RetriesPerFrame, res.ReportDrops, res.Crashed, res.Repairs,
			res.Severed, res.EnergyFactor, res.Misclassification, res.MeanHausdorff)
	}
	return t, nil
}
