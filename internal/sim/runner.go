package sim

import (
	"runtime"
	"sync"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// Runner executes experiment sweeps: it fans the independent (scenario,
// seed) cells of each figure out over a bounded worker pool and aggregates
// the results in deterministic order, so the output of a parallel run is
// byte-identical to a sequential one. Behind the pool sit two caches that
// remove the structural waste of the sweep grid:
//
//   - a deployment cache, memoizing the materialized field, network and
//     routing tree per (Nodes, FieldSide, Radio, Grid, Seed, FailFraction,
//     Trace) tuple — every Build hands out an isolated Network.Clone of
//     the cached deployment, so concurrent jobs never share mutable node
//     state;
//   - a ground-truth memo (field.Memo), computing each truth raster and
//     isoline point set once per (field, levels, resolution) key.
//
// Both caches rely on deployments being deterministic in the scenario and
// on protocol rounds never mutating anything but node values (each Run*
// re-senses; see the Env contract in this package and routing.Tree.Rebind).
//
// A Runner is safe for concurrent use and retains its caches for its
// lifetime; use separate Runners to isolate cache state.
type Runner struct {
	parallel int
	sem      chan struct{}

	memo *field.Memo

	mu          sync.Mutex
	fields      map[field.SeabedConfig]field.Field
	deployments map[deployKey]*deployEntry
}

// deployKey identifies one materialized deployment. Query-side scenario
// knobs (Levels, Epsilon, Filter, Regulate) deliberately do not appear:
// they never influence the field, the node placement or the routing tree,
// so scenarios differing only in those share a deployment.
type deployKey struct {
	nodes        int
	fieldSide    float64
	radio        float64
	grid         bool
	seed         int64
	failFraction float64
	trace        field.Field
}

// deployEntry is a once-guarded cache slot, so concurrent jobs requesting
// the same deployment build it exactly once without serializing builds of
// distinct deployments.
type deployEntry struct {
	once sync.Once
	dep  *deployment
	err  error
}

// deployment is the immutable, shareable part of a built scenario.
type deployment struct {
	field field.Field
	nw    *network.Network
	tree  *routing.Tree
}

// NewRunner returns a runner with the given worker-pool width; parallel
// < 1 selects GOMAXPROCS.
func NewRunner(parallel int) *Runner {
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		parallel:    parallel,
		sem:         make(chan struct{}, parallel),
		memo:        field.NewMemo(),
		fields:      make(map[field.SeabedConfig]field.Field),
		deployments: make(map[deployKey]*deployEntry),
	}
}

// Parallel returns the worker-pool width.
func (r *Runner) Parallel() int { return r.parallel }

// defaultRunner backs the package-level Build and figure functions: one
// shared process-wide runner, so independent sweeps benefit from each
// other's cached deployments.
var defaultRunner = sync.OnceValue(func() *Runner { return NewRunner(0) })

// Build materializes the scenario through the runner's caches: the
// deployment (field, network, tree) is memoized per deployKey and handed
// out as an isolated clone, while the query side is rebuilt per call. The
// returned Env is equivalent to one from an uncached build and is owned
// exclusively by the caller.
func (r *Runner) Build(s Scenario) (*Env, error) {
	s = s.withDefaults()
	if s.Trace != nil && !field.Cacheable(s.Trace) {
		// A trace whose dynamic type cannot key a map is built directly.
		env, err := buildEnv(s, s.Trace, r.memo)
		if err != nil {
			return nil, err
		}
		env.rasterWorkers = r.rasterWorkers()
		return env, nil
	}
	key := deployKey{
		nodes:        s.Nodes,
		fieldSide:    s.FieldSide,
		radio:        s.Radio,
		grid:         s.Grid,
		seed:         s.Seed,
		failFraction: s.FailFraction,
		trace:        s.Trace,
	}
	r.mu.Lock()
	e, ok := r.deployments[key]
	if !ok {
		e = &deployEntry{}
		r.deployments[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.dep, e.err = r.buildDeployment(s) })
	if e.err != nil {
		return nil, e.err
	}
	nw := e.dep.nw.Clone()
	tree, err := e.dep.tree.Rebind(nw)
	if err != nil {
		return nil, err
	}
	q, err := core.NewQueryEpsilon(s.Levels, s.Epsilon)
	if err != nil {
		return nil, err
	}
	return &Env{
		Scenario: s, Field: e.dep.field, Network: nw, Tree: tree, Query: q,
		memo: r.memo, rasterWorkers: r.rasterWorkers(),
	}, nil
}

// rasterWorkers returns the per-Env raster pool width: sequential inside a
// parallel runner (the sweep already saturates the cores), unconstrained
// otherwise.
func (r *Runner) rasterWorkers() int {
	if r.parallel > 1 {
		return 1
	}
	return 0
}

// buildDeployment materializes the deployment side of a defaulted
// scenario, sharing synthetic fields per config across deployments so the
// truth memo keys coincide for every seed of a sweep.
func (r *Runner) buildDeployment(s Scenario) (*deployment, error) {
	f := s.Trace
	if f == nil {
		cfg := seabedConfigFor(s)
		r.mu.Lock()
		cached, ok := r.fields[cfg]
		if !ok {
			cached = field.NewSeabed(cfg)
			r.fields[cfg] = cached
		}
		r.mu.Unlock()
		f = cached
	}
	nw, tree, err := deploy(s, f)
	if err != nil {
		return nil, err
	}
	return &deployment{field: f, nw: nw, tree: tree}, nil
}

// runJobs executes n independent jobs on the runner's bounded pool and
// returns their results indexed by job, failing with the lowest-indexed
// error so error reporting is deterministic too.
func runJobs[T any](r *Runner, n int, job func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			out[i], errs[i] = job(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// averageOver runs fn for seeds 1..runs on the worker pool and averages
// the returned values elementwise, skipping negative (n/a) samples per
// element.
func (r *Runner) averageOver(runs int, fn func(seed int64) ([]float64, error)) ([]float64, error) {
	if runs < 1 {
		runs = 1
	}
	vecs, err := runJobs(r, runs, func(i int) ([]float64, error) {
		return fn(int64(i) + 1)
	})
	if err != nil {
		return nil, err
	}
	return averageVecs(vecs), nil
}

// sweepAverage fans all (point, seed) cells of a sweep out as independent
// jobs — not one sweep point at a time — and returns the per-point
// elementwise averages in point order, with the same n/a skipping as
// averageOver.
func sweepAverage(r *Runner, points, runs int, cell func(point int, seed int64) ([]float64, error)) ([][]float64, error) {
	if runs < 1 {
		runs = 1
	}
	flat, err := runJobs(r, points*runs, func(i int) ([]float64, error) {
		return cell(i/runs, int64(i%runs)+1)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]float64, points)
	for p := range out {
		out[p] = averageVecs(flat[p*runs : (p+1)*runs])
	}
	return out, nil
}

// averageVecs averages same-length vectors elementwise, skipping negative
// (n/a) samples; an element with no valid samples averages to -1.
func averageVecs(vecs [][]float64) []float64 {
	var sums []float64
	var counts []int
	for _, vals := range vecs {
		if sums == nil {
			sums = make([]float64, len(vals))
			counts = make([]int, len(vals))
		}
		for i, v := range vals {
			if v < 0 {
				continue
			}
			sums[i] += v
			counts[i]++
		}
	}
	out := make([]float64, len(sums))
	for i := range sums {
		if counts[i] == 0 {
			out[i] = -1
			continue
		}
		out[i] = sums[i] / float64(counts[i])
	}
	return out
}
