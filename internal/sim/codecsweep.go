package sim

import (
	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/field"
)

// ExtCodecSweep measures what the wire format costs: reports pass through
// the fixed-point codec (quantizing position, isolevel and gradient)
// before reconstruction, at the paper's 2 bytes per parameter and at a
// compact 1 byte per parameter that halves the report traffic.
func ExtCodecSweep(runs int) (*Table, error) { return defaultRunner().ExtCodecSweep(runs) }

// ExtCodecSweep is the Runner form of the package-level function.
func (r *Runner) ExtCodecSweep(runs int) (*Table, error) {
	t := &Table{
		ID:      "ext-codec",
		Title:   "Wire-format quantization: accuracy vs report size",
		Columns: []string{"bytes/param", "report bytes", "traffic KB (reports only)", "accuracy"},
	}
	type setting struct {
		label string
		bpp   int // 0 = no codec (float64 reference)
	}
	settings := []setting{{"exact (no codec)", 0}, {"2 (paper)", 2}, {"1 (compact)", 1}}
	rows, err := sweepAverage(r, len(settings), runs, func(p int, seed int64) ([]float64, error) {
		return r.codecRow(settings[p].bpp, seed)
	})
	if err != nil {
		return nil, err
	}
	for p, s := range settings {
		t.AddRow(s.label, rows[p][0], rows[p][1], rows[p][2])
	}
	return t, nil
}

func (r *Runner) codecRow(bpp int, seed int64) ([]float64, error) {
	env, err := r.Build(Scenario{Seed: seed})
	if err != nil {
		return nil, err
	}
	res, err := core.Run(env.Tree, env.Field, env.Query, *env.Scenario.Filter)
	if err != nil {
		return nil, err
	}
	reports := res.Reports
	reportBytes := float64(core.ReportBytes)
	if bpp > 0 {
		codec, err := core.NewCodec(env.Query.Levels, field.BoundsRect(env.Field), bpp)
		if err != nil {
			return nil, err
		}
		reportBytes = float64(codec.ReportSize())
		decoded, err := codec.DecodeAll(codec.EncodeAll(reports))
		if err != nil {
			return nil, err
		}
		reports = decoded
	}
	// Report-only traffic: every delivered report re-costed at the wire
	// size over its source's hop count.
	var trafficBytes float64
	for _, rp := range res.Reports {
		trafficBytes += reportBytes * float64(env.Tree.Level(rp.Source))
	}
	m := contour.Reconstruct(reports, env.Query.Levels,
		field.BoundsRect(env.Field), res.SinkValue, contour.DefaultOptions())
	acc := field.Agreement(env.truthRaster(), env.estRaster(m))
	return []float64{reportBytes, trafficBytes / 1024, acc}, nil
}
