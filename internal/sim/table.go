package sim

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result: one table or figure series.
type Table struct {
	// ID names the reproduced artifact, e.g. "fig11a" or "table1".
	ID string
	// Title describes the series.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold formatted cells, aligned with Columns.
	Rows [][]string
}

// AddRow appends a row, formatting each value: floats with %.4g, the rest
// with %v. A float exactly -1 renders as "-" (not applicable).
func (t *Table) AddRow(vals ...any) {
	row := make([]string, 0, len(vals))
	for _, v := range vals {
		switch x := v.(type) {
		case float64:
			if x == -1 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.4g", x))
			}
		case float32:
			row = append(row, fmt.Sprintf("%.4g", x))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.Rows = append(t.Rows, row)
}

// CSV renders the table as RFC-4180-style comma-separated values with a
// header row, for downstream plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, col := range t.Columns {
		widths[i] = len(col)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
