package sim

import (
	"math"
	"reflect"
	"testing"
)

// TestExtFaultSweepSmoke runs the CI smoke cell — one lossy, bursty,
// crashing round — and checks the acceptance properties: the sweep
// completes, delivery degrades below 1, and every fidelity metric is
// finite.
func TestExtFaultSweepSmoke(t *testing.T) {
	results, err := NewRunner(2).ExtFaultSweepResults(1, SmokeFaultPoints())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	res := results[0]
	if res.DeliveryRatio <= 0 || res.DeliveryRatio >= 1 {
		t.Errorf("delivery ratio %g, want in (0, 1) under loss 0.2 + crashes", res.DeliveryRatio)
	}
	if res.Crashed == 0 {
		t.Error("no node crashed at fraction 0.05")
	}
	for _, v := range []float64{
		res.DeliveryRatio, res.RetriesPerFrame, res.ReportDrops, res.Crashed,
		res.Repairs, res.Severed, res.EnergyFactor, res.Misclassification,
		res.MeanHausdorff,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("non-finite metric in %+v", res)
			break
		}
	}
}

// TestExtFaultSweepFaultFreePointMatchesBaseline checks that the sweep's
// control point — all fault knobs zero — scores exactly no degradation:
// its plan must leave the round bit-identical to the baseline round.
func TestExtFaultSweepFaultFreePointMatchesBaseline(t *testing.T) {
	results, err := NewRunner(2).ExtFaultSweepResults(1, []FaultPoint{{}})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.DeliveryRatio != 1 {
		t.Errorf("fault-free delivery ratio %g, want exactly 1", res.DeliveryRatio)
	}
	if res.EnergyFactor != 1 {
		t.Errorf("fault-free energy factor %g, want exactly 1", res.EnergyFactor)
	}
	if res.Misclassification != 0 {
		t.Errorf("fault-free misclassification %g, want exactly 0", res.Misclassification)
	}
	if res.MeanHausdorff != 0 {
		t.Errorf("fault-free Hausdorff %g, want exactly 0", res.MeanHausdorff)
	}
	if res.Crashed != 0 || res.Repairs != 0 || res.Severed != 0 {
		t.Errorf("fault-free point reported crash activity: %+v", res)
	}
}

// TestExtFaultSweepDeterministicAcrossWidths checks the reproducibility
// acceptance criterion: the sweep's output is identical at any worker
// pool width and across repeated runs.
func TestExtFaultSweepDeterministicAcrossWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-width sweep in -short mode")
	}
	points := []FaultPoint{{Loss: 0.3, Burst: 0.6, Crash: 0.1}}
	var ref []FaultPointResult
	for _, width := range []int{1, 4} {
		results, err := NewRunner(width).ExtFaultSweepResults(2, points)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = results
			continue
		}
		if !reflect.DeepEqual(ref, results) {
			t.Fatalf("width %d diverged:\n ref: %+v\n got: %+v", width, ref, results)
		}
	}
}
