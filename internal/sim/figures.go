package sim

import (
	"fmt"
	"math"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/stats"
)

// Densities used by the density sweeps (normalized to 1 = 2,500 nodes on
// the 50x50 field, as in Sec. 5).
var sweepDensities = []float64{0.16, 0.36, 0.64, 1, 2, 4}

// Field sides for the diameter sweeps of Figs. 14a/15/16 at density 1.
var sweepSides = []float64{20, 35, 50, 70, 90}

// nodesAtDensity returns the node count realizing a normalized density on
// the reference 50x50 field.
func nodesAtDensity(d float64) int { return int(math.Round(d * 2500)) }

// averageOver runs fn for seeds 1..runs and averages the returned values
// elementwise, skipping negative (n/a) samples per element.
func averageOver(runs int, fn func(seed int64) ([]float64, error)) ([]float64, error) {
	if runs < 1 {
		runs = 1
	}
	var sums []float64
	var counts []int
	for seed := int64(1); seed <= int64(runs); seed++ {
		vals, err := fn(seed)
		if err != nil {
			return nil, err
		}
		if sums == nil {
			sums = make([]float64, len(vals))
			counts = make([]int, len(vals))
		}
		for i, v := range vals {
			if v < 0 {
				continue
			}
			sums[i] += v
			counts[i]++
		}
	}
	out := make([]float64, len(sums))
	for i := range sums {
		if counts[i] == 0 {
			out[i] = -1
			continue
		}
		out[i] = sums[i] / float64(counts[i])
	}
	return out, nil
}

// Table1Overhead reproduces Table 1: the analytic overhead comparison of
// the five approaches, annotated with the measured generated-report counts
// and network computation at the reference scenario (n = 2,500).
func Table1Overhead() (*Table, error) {
	t := &Table{
		ID:    "table1",
		Title: "Overhead comparison of different approaches (analytic + measured at n=2500)",
		Columns: []string{
			"Protocol", "Reports (analytic)", "Computation (analytic)",
			"Deployment", "Reports (measured)", "Network ops (measured)",
		},
	}
	gridEnv, err := Build(Scenario{Grid: true, Seed: 1})
	if err != nil {
		return nil, err
	}
	randEnv, err := Build(Scenario{Seed: 1})
	if err != nil {
		return nil, err
	}

	tdb, _, err := gridEnv.RunTinyDB()
	if err != nil {
		return nil, err
	}
	esc, err := randEnv.RunEScan()
	if err != nil {
		return nil, err
	}
	inl, err := gridEnv.RunINLR()
	if err != nil {
		return nil, err
	}
	sup, err := gridEnv.RunSuppress()
	if err != nil {
		return nil, err
	}
	iso, _, err := randEnv.RunIsoMap()
	if err != nil {
		return nil, err
	}

	t.AddRow("TinyDB", "n", "O(n)", "grid", tdb.Generated, fmt.Sprintf("%.3g", tdb.MeanOps*float64(tdb.Nodes)))
	t.AddRow("eScan", "n", "O(n^4)", "any", esc.Generated, fmt.Sprintf("%.3g", esc.MeanOps*float64(esc.Nodes)))
	t.AddRow("INLR", "n", "Omega(n^1.5)", "grid", inl.Generated, fmt.Sprintf("%.3g", inl.MeanOps*float64(inl.Nodes)))
	t.AddRow("Suppression", "O(n)", "Omega(n*d)", "grid", sup.Generated, fmt.Sprintf("%.3g", sup.MeanOps*float64(sup.Nodes)))
	t.AddRow("Iso-Map", "O(sqrt n)", "O(n)", "any", iso.Generated, fmt.Sprintf("%.3g", iso.MeanOps*float64(iso.Nodes)))
	return t, nil
}

// Fig7GradientError reproduces Fig. 7: the error between the regressed
// gradient direction and the true isoline normal, against the average node
// degree (varied through the radio range).
func Fig7GradientError(runs int) (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "Gradient direction error vs average node degree",
		Columns: []string{"radio", "avg degree", "mean error (deg)", "p95 error (deg)"},
	}
	for _, radio := range []float64{1.1, 1.3, 1.5, 1.8, 2.2, 2.6} {
		vals, err := averageOver(runs, func(seed int64) ([]float64, error) {
			env, err := Build(Scenario{Radio: radio, Seed: seed})
			if err != nil {
				return nil, err
			}
			deg, mean, p95, err := env.gradientErrorStats()
			if err != nil {
				return nil, err
			}
			return []float64{deg, mean, p95}, nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(radio, vals[0], vals[1], vals[2])
	}
	return t, nil
}

// gradientErrorStats measures the angular error of every isoline node's
// regressed gradient against the true field normal.
func (e *Env) gradientErrorStats() (avgDegree, meanErr, p95Err float64, err error) {
	e.Network.Sense(e.Field)
	reports := core.DetectIsolineNodes(e.Network, e.Query, nil)
	if len(reports) == 0 {
		return 0, 0, 0, fmt.Errorf("sim: no isoline nodes at radio %g", e.Scenario.Radio)
	}
	errsDeg := make([]float64, 0, len(reports))
	for _, r := range reports {
		trueDown := field.GradientAt(e.Field, r.Pos.X, r.Pos.Y).Neg()
		errsDeg = append(errsDeg, geom.Degrees(r.Grad.AngleBetween(trueDown)))
	}
	return e.Network.AverageDegree(), stats.Mean(errsDeg), stats.Percentile(errsDeg, 95), nil
}

// Fig9ReportDensity reproduces Fig. 9: the contour map built under two
// in-network filter settings, contrasting received reports and accuracy.
func Fig9ReportDensity() (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "Contour regions under different report densities",
		Columns: []string{"filter (sa, sd)", "sink reports", "accuracy"},
	}
	settings := []struct {
		label string
		fc    core.FilterConfig
	}{
		{"off (all reports)", core.FilterConfig{Enabled: false}},
		{"sa=30deg sd=4", core.DefaultFilterConfig()},
		{"sa=45deg sd=8", core.FilterConfig{Enabled: true, MaxAngle: geom.Radians(45), MaxDist: 8}},
	}
	for _, s := range settings {
		fc := s.fc
		env, err := Build(Scenario{Seed: 1, Filter: &fc})
		if err != nil {
			return nil, err
		}
		st, _, err := env.RunIsoMap()
		if err != nil {
			return nil, err
		}
		t.AddRow(s.label, st.SinkReports, st.Accuracy)
	}
	return t, nil
}

// Fig10Maps reproduces Fig. 10: TinyDB and Iso-Map contour maps at
// normalized node densities 4, 1 and 0.16, reporting the received reports
// and accuracy that accompany the paper's rendered maps.
func Fig10Maps(runs int) (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "Contour mapping at densities 4 / 1 / 0.16",
		Columns: []string{"density", "nodes", "TinyDB accuracy", "Iso-Map accuracy", "Iso-Map sink reports"},
	}
	for _, d := range []float64{4, 1, 0.16} {
		n := nodesAtDensity(d)
		vals, err := averageOver(runs, func(seed int64) ([]float64, error) {
			gridEnv, err := Build(Scenario{Nodes: n, Grid: true, Seed: seed})
			if err != nil {
				return nil, err
			}
			tdb, _, err := gridEnv.RunTinyDB()
			if err != nil {
				return nil, err
			}
			randEnv, err := Build(Scenario{Nodes: n, Seed: seed})
			if err != nil {
				return nil, err
			}
			iso, _, err := randEnv.RunIsoMap()
			if err != nil {
				return nil, err
			}
			return []float64{tdb.Accuracy, iso.Accuracy, float64(iso.SinkReports)}, nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(d, n, vals[0], vals[1], vals[2])
	}
	return t, nil
}

// Fig11aAccuracyDensity reproduces Fig. 11a: mapping accuracy against node
// density for TinyDB and Iso-Map with two border tolerances.
func Fig11aAccuracyDensity(runs int) (*Table, error) {
	t := &Table{
		ID:      "fig11a",
		Title:   "Mapping accuracy vs node density",
		Columns: []string{"density", "TinyDB", "Iso-Map eps=0.05T", "Iso-Map eps=0.2T"},
	}
	for _, d := range sweepDensities {
		n := nodesAtDensity(d)
		vals, err := averageOver(runs, func(seed int64) ([]float64, error) {
			return accuracyTriple(n, 0, seed)
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(d, vals[0], vals[1], vals[2])
	}
	return t, nil
}

// Fig11bAccuracyFailures reproduces Fig. 11b: mapping accuracy against the
// node-failure ratio.
func Fig11bAccuracyFailures(runs int) (*Table, error) {
	t := &Table{
		ID:      "fig11b",
		Title:   "Mapping accuracy vs node failures",
		Columns: []string{"failure ratio", "TinyDB", "Iso-Map eps=0.05T", "Iso-Map eps=0.2T"},
	}
	for _, fail := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		vals, err := averageOver(runs, func(seed int64) ([]float64, error) {
			return accuracyTriple(2500, fail, seed)
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fail, vals[0], vals[1], vals[2])
	}
	return t, nil
}

// accuracyTriple runs TinyDB and the two Iso-Map epsilon settings on one
// seed, returning their accuracies.
func accuracyTriple(n int, fail float64, seed int64) ([]float64, error) {
	gridEnv, err := Build(Scenario{Nodes: n, Grid: true, Seed: seed, FailFraction: fail})
	if err != nil {
		return nil, err
	}
	tdb, _, err := gridEnv.RunTinyDB()
	if err != nil {
		return nil, err
	}
	isoNarrow, err := isoMapAccuracy(n, fail, seed, 0.05)
	if err != nil {
		return nil, err
	}
	isoWide, err := isoMapAccuracy(n, fail, seed, 0.2)
	if err != nil {
		return nil, err
	}
	return []float64{tdb.Accuracy, isoNarrow, isoWide}, nil
}

func isoMapAccuracy(n int, fail float64, seed int64, epsFraction float64) (float64, error) {
	env, err := Build(Scenario{
		Nodes:        n,
		Seed:         seed,
		FailFraction: fail,
		Epsilon:      epsFraction * 2, // Step = 2
	})
	if err != nil {
		return 0, err
	}
	st, _, err := env.RunIsoMap()
	if err != nil {
		return 0, err
	}
	return st.Accuracy, nil
}

// Fig12aHausdorffDensity reproduces Fig. 12a: the Hausdorff distance
// between estimated and true isolines against node density, for Iso-Map on
// random and grid deployments and for TinyDB.
func Fig12aHausdorffDensity(runs int) (*Table, error) {
	t := &Table{
		ID:      "fig12a",
		Title:   "Isoline Hausdorff distance vs node density",
		Columns: []string{"density", "Iso-Map random", "Iso-Map grid", "TinyDB"},
	}
	for _, d := range sweepDensities {
		n := nodesAtDensity(d)
		vals, err := averageOver(runs, func(seed int64) ([]float64, error) {
			return hausdorffTriple(n, 0, seed)
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(d, vals[0], vals[1], vals[2])
	}
	return t, nil
}

// Fig12bHausdorffFailures reproduces Fig. 12b: Hausdorff distance against
// the node-failure ratio.
func Fig12bHausdorffFailures(runs int) (*Table, error) {
	t := &Table{
		ID:      "fig12b",
		Title:   "Isoline Hausdorff distance vs node failures",
		Columns: []string{"failure ratio", "Iso-Map random", "Iso-Map grid", "TinyDB"},
	}
	for _, fail := range []float64{0, 0.1, 0.2, 0.3, 0.4} {
		vals, err := averageOver(runs, func(seed int64) ([]float64, error) {
			return hausdorffTriple(2500, fail, seed)
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fail, vals[0], vals[1], vals[2])
	}
	return t, nil
}

func hausdorffTriple(n int, fail float64, seed int64) ([]float64, error) {
	randEnv, err := Build(Scenario{Nodes: n, Seed: seed, FailFraction: fail})
	if err != nil {
		return nil, err
	}
	isoRand, _, err := randEnv.RunIsoMap()
	if err != nil {
		return nil, err
	}
	gridEnv, err := Build(Scenario{Nodes: n, Grid: true, Seed: seed, FailFraction: fail})
	if err != nil {
		return nil, err
	}
	isoGrid, _, err := gridEnv.RunIsoMap()
	if err != nil {
		return nil, err
	}
	gridEnv2, err := Build(Scenario{Nodes: n, Grid: true, Seed: seed, FailFraction: fail})
	if err != nil {
		return nil, err
	}
	tdb, _, err := gridEnv2.RunTinyDB()
	if err != nil {
		return nil, err
	}
	return []float64{isoRand.MeanHausdorff, isoGrid.MeanHausdorff, tdb.MeanHausdorff}, nil
}

// Fig13aFilterReports reproduces Fig. 13a: the number of reports received
// at the sink under different (s_a, s_d) filter settings.
func Fig13aFilterReports() (*Table, error) {
	return fig13(false)
}

// Fig13bFilterAccuracy reproduces Fig. 13b: the mapping accuracy under the
// same filter settings.
func Fig13bFilterAccuracy() (*Table, error) {
	return fig13(true)
}

func fig13(accuracy bool) (*Table, error) {
	id, title, col := "fig13a", "Sink reports vs filter thresholds", "sink reports"
	if accuracy {
		id, title, col = "fig13b", "Mapping accuracy vs filter thresholds", "accuracy"
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"sa (deg)", "sd", col},
	}
	for _, sa := range []float64{0, 15, 30, 45, 60} {
		for _, sd := range []float64{0, 2, 4, 6, 8} {
			fc := core.FilterConfig{Enabled: true, MaxAngle: geom.Radians(sa), MaxDist: sd}
			env, err := Build(Scenario{Seed: 1, Filter: &fc})
			if err != nil {
				return nil, err
			}
			st, _, err := env.RunIsoMap()
			if err != nil {
				return nil, err
			}
			if accuracy {
				t.AddRow(sa, sd, st.Accuracy)
			} else {
				t.AddRow(sa, sd, st.SinkReports)
			}
		}
	}
	return t, nil
}

// Fig14aTrafficDiameter reproduces Fig. 14a: traffic overhead (KB) of
// TinyDB, INLR and Iso-Map against the network diameter at density 1.
func Fig14aTrafficDiameter() (*Table, error) {
	t := &Table{
		ID:      "fig14a",
		Title:   "Traffic overhead (KB) vs network diameter",
		Columns: []string{"field side", "nodes", "diameter (hops)", "TinyDB KB", "INLR KB", "Iso-Map KB"},
	}
	for _, side := range sweepSides {
		row, err := trafficRow(side, 1)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig14bTrafficDensity reproduces Fig. 14b: traffic overhead against node
// density on the reference field.
func Fig14bTrafficDensity() (*Table, error) {
	t := &Table{
		ID:      "fig14b",
		Title:   "Traffic overhead (KB) vs node density",
		Columns: []string{"density", "nodes", "diameter (hops)", "TinyDB KB", "INLR KB", "Iso-Map KB"},
	}
	for _, d := range []float64{0.5, 1, 2, 4} {
		row, err := trafficRow(50, d)
		if err != nil {
			return nil, err
		}
		row[0] = d
		t.AddRow(row...)
	}
	return t, nil
}

// trafficRow runs the three protocols of Figs. 14-16 on one scenario.
func trafficRow(side, density float64) ([]any, error) {
	n := int(math.Round(density * side * side))
	gridEnv, err := Build(Scenario{Nodes: n, FieldSide: side, Grid: true, Seed: 1})
	if err != nil {
		return nil, err
	}
	tdb, _, err := gridEnv.RunTinyDB()
	if err != nil {
		return nil, err
	}
	inl, err := gridEnv.RunINLR()
	if err != nil {
		return nil, err
	}
	randEnv, err := Build(Scenario{Nodes: n, FieldSide: side, Seed: 1})
	if err != nil {
		return nil, err
	}
	iso, _, err := randEnv.RunIsoMap()
	if err != nil {
		return nil, err
	}
	return []any{side, n, tdb.Diameter, tdb.TrafficKB, inl.TrafficKB, iso.TrafficKB}, nil
}

// Fig15aCompute reproduces Fig. 15a: per-node computational intensity of
// the three protocols against network size.
func Fig15aCompute() (*Table, error) {
	t := &Table{
		ID:      "fig15a",
		Title:   "Per-node computational intensity vs network size",
		Columns: []string{"field side", "nodes", "TinyDB ops", "INLR ops", "Iso-Map ops"},
	}
	for _, side := range sweepSides {
		stats, err := threeProtocolStats(side)
		if err != nil {
			return nil, err
		}
		t.AddRow(side, stats[0].Nodes, stats[0].MeanOps, stats[1].MeanOps, stats[2].MeanOps)
	}
	return t, nil
}

// Fig15bComputeIsoMap reproduces Fig. 15b: the amplified Iso-Map view
// showing constant per-node intensity.
func Fig15bComputeIsoMap() (*Table, error) {
	t := &Table{
		ID:      "fig15b",
		Title:   "Iso-Map per-node computational intensity vs network size (amplified)",
		Columns: []string{"field side", "nodes", "Iso-Map ops/node"},
	}
	for _, side := range sweepSides {
		env, err := Build(Scenario{Nodes: int(side * side), FieldSide: side, Seed: 1})
		if err != nil {
			return nil, err
		}
		iso, _, err := env.RunIsoMap()
		if err != nil {
			return nil, err
		}
		t.AddRow(side, iso.Nodes, iso.MeanOps)
	}
	return t, nil
}

// Fig16Energy reproduces Fig. 16: per-node energy consumption of the three
// protocols against network size, under the Mica2 model.
func Fig16Energy() (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "Per-node energy (J) vs network size",
		Columns: []string{"field side", "nodes", "TinyDB J", "INLR J", "Iso-Map J"},
	}
	for _, side := range sweepSides {
		stats, err := threeProtocolStats(side)
		if err != nil {
			return nil, err
		}
		t.AddRow(side, stats[0].Nodes, stats[0].MeanEnergyJ, stats[1].MeanEnergyJ, stats[2].MeanEnergyJ)
	}
	return t, nil
}

// threeProtocolStats runs TinyDB, INLR and Iso-Map at density 1 on a field
// of the given side, returning their stats in that order.
func threeProtocolStats(side float64) ([3]Stats, error) {
	var out [3]Stats
	n := int(side * side)
	gridEnv, err := Build(Scenario{Nodes: n, FieldSide: side, Grid: true, Seed: 1})
	if err != nil {
		return out, err
	}
	tdb, _, err := gridEnv.RunTinyDB()
	if err != nil {
		return out, err
	}
	inl, err := gridEnv.RunINLR()
	if err != nil {
		return out, err
	}
	randEnv, err := Build(Scenario{Nodes: n, FieldSide: side, Seed: 1})
	if err != nil {
		return out, err
	}
	iso, _, err := randEnv.RunIsoMap()
	if err != nil {
		return out, err
	}
	out[0], out[1], out[2] = tdb, inl, iso
	return out, nil
}

// AllFigures regenerates every table and figure with the given averaging
// runs, in paper order.
func AllFigures(runs int) ([]*Table, error) {
	type gen struct {
		name string
		fn   func() (*Table, error)
	}
	gens := []gen{
		{"table1", Table1Overhead},
		{"fig7", func() (*Table, error) { return Fig7GradientError(runs) }},
		{"fig9", Fig9ReportDensity},
		{"fig10", func() (*Table, error) { return Fig10Maps(runs) }},
		{"fig11a", func() (*Table, error) { return Fig11aAccuracyDensity(runs) }},
		{"fig11b", func() (*Table, error) { return Fig11bAccuracyFailures(runs) }},
		{"fig12a", func() (*Table, error) { return Fig12aHausdorffDensity(runs) }},
		{"fig12b", func() (*Table, error) { return Fig12bHausdorffFailures(runs) }},
		{"fig13a", Fig13aFilterReports},
		{"fig13b", Fig13bFilterAccuracy},
		{"fig14a", Fig14aTrafficDiameter},
		{"fig14b", Fig14bTrafficDensity},
		{"fig15a", Fig15aCompute},
		{"fig15b", Fig15bComputeIsoMap},
		{"fig16", Fig16Energy},
	}
	var out []*Table
	for _, g := range gens {
		tb, err := g.fn()
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", g.name, err)
		}
		out = append(out, tb)
	}
	return out, nil
}
