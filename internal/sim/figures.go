package sim

import (
	"fmt"
	"math"
	"sync"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/stats"
)

// Densities used by the density sweeps (normalized to 1 = 2,500 nodes on
// the 50x50 field, as in Sec. 5).
var sweepDensities = []float64{0.16, 0.36, 0.64, 1, 2, 4}

// Field sides for the diameter sweeps of Figs. 14a/15/16 at density 1.
var sweepSides = []float64{20, 35, 50, 70, 90}

// nodesAtDensity returns the node count realizing a normalized density on
// the reference 50x50 field.
func nodesAtDensity(d float64) int { return int(math.Round(d * 2500)) }

// Table1Overhead reproduces Table 1: the analytic overhead comparison of
// the five approaches, annotated with the measured generated-report counts
// and network computation at the reference scenario (n = 2,500).
func Table1Overhead() (*Table, error) { return defaultRunner().Table1Overhead() }

// Table1Overhead is the Runner form of the package-level function; the
// five protocol rounds run as independent jobs on the worker pool.
func (r *Runner) Table1Overhead() (*Table, error) {
	t := &Table{
		ID:    "table1",
		Title: "Overhead comparison of different approaches (analytic + measured at n=2500)",
		Columns: []string{
			"Protocol", "Reports (analytic)", "Computation (analytic)",
			"Deployment", "Reports (measured)", "Network ops (measured)",
		},
	}
	// One job per protocol; the grid and random deployments are cloned
	// from the cache, so the three grid jobs do not rebuild the network.
	cells := []struct {
		grid bool
		run  func(*Env) (Stats, error)
	}{
		{true, func(e *Env) (Stats, error) { st, _, err := e.RunTinyDB(); return st, err }},
		{false, func(e *Env) (Stats, error) { return e.RunEScan() }},
		{true, func(e *Env) (Stats, error) { return e.RunINLR() }},
		{true, func(e *Env) (Stats, error) { return e.RunSuppress() }},
		{false, func(e *Env) (Stats, error) { st, _, err := e.RunIsoMap(); return st, err }},
	}
	measured, err := runJobs(r, len(cells), func(i int) (Stats, error) {
		env, err := r.Build(Scenario{Grid: cells[i].grid, Seed: 1})
		if err != nil {
			return Stats{}, err
		}
		return cells[i].run(env)
	})
	if err != nil {
		return nil, err
	}
	ops := func(st Stats) string { return fmt.Sprintf("%.3g", st.MeanOps*float64(st.Nodes)) }
	t.AddRow("TinyDB", "n", "O(n)", "grid", measured[0].Generated, ops(measured[0]))
	t.AddRow("eScan", "n", "O(n^4)", "any", measured[1].Generated, ops(measured[1]))
	t.AddRow("INLR", "n", "Omega(n^1.5)", "grid", measured[2].Generated, ops(measured[2]))
	t.AddRow("Suppression", "O(n)", "Omega(n*d)", "grid", measured[3].Generated, ops(measured[3]))
	t.AddRow("Iso-Map", "O(sqrt n)", "O(n)", "any", measured[4].Generated, ops(measured[4]))
	return t, nil
}

// Fig7GradientError reproduces Fig. 7: the error between the regressed
// gradient direction and the true isoline normal, against the average node
// degree (varied through the radio range).
func Fig7GradientError(runs int) (*Table, error) { return defaultRunner().Fig7GradientError(runs) }

// Fig7GradientError is the Runner form of the package-level function.
func (r *Runner) Fig7GradientError(runs int) (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "Gradient direction error vs average node degree",
		Columns: []string{"radio", "avg degree", "mean error (deg)", "p95 error (deg)"},
	}
	radios := []float64{1.1, 1.3, 1.5, 1.8, 2.2, 2.6}
	rows, err := sweepAverage(r, len(radios), runs, func(p int, seed int64) ([]float64, error) {
		env, err := r.Build(Scenario{Radio: radios[p], Seed: seed})
		if err != nil {
			return nil, err
		}
		deg, mean, p95, err := env.gradientErrorStats()
		if err != nil {
			return nil, err
		}
		return []float64{deg, mean, p95}, nil
	})
	if err != nil {
		return nil, err
	}
	for p, radio := range radios {
		t.AddRow(radio, rows[p][0], rows[p][1], rows[p][2])
	}
	return t, nil
}

// gradientErrorStats measures the angular error of every isoline node's
// regressed gradient against the true field normal.
func (e *Env) gradientErrorStats() (avgDegree, meanErr, p95Err float64, err error) {
	e.Network.Sense(e.Field)
	reports := core.DetectIsolineNodes(e.Network, e.Query, nil)
	if len(reports) == 0 {
		return 0, 0, 0, fmt.Errorf("sim: no isoline nodes at radio %g", e.Scenario.Radio)
	}
	errsDeg := make([]float64, 0, len(reports))
	for _, r := range reports {
		trueDown := field.GradientAt(e.Field, r.Pos.X, r.Pos.Y).Neg()
		errsDeg = append(errsDeg, geom.Degrees(r.Grad.AngleBetween(trueDown)))
	}
	return e.Network.AverageDegree(), stats.Mean(errsDeg), stats.Percentile(errsDeg, 95), nil
}

// Fig9ReportDensity reproduces Fig. 9: the contour map built under two
// in-network filter settings, contrasting received reports and accuracy.
func Fig9ReportDensity() (*Table, error) { return defaultRunner().Fig9ReportDensity() }

// Fig9ReportDensity is the Runner form of the package-level function.
func (r *Runner) Fig9ReportDensity() (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "Contour regions under different report densities",
		Columns: []string{"filter (sa, sd)", "sink reports", "accuracy"},
	}
	settings := []struct {
		label string
		fc    core.FilterConfig
	}{
		{"off (all reports)", core.FilterConfig{Enabled: false}},
		{"sa=30deg sd=4", core.DefaultFilterConfig()},
		{"sa=45deg sd=8", core.FilterConfig{Enabled: true, MaxAngle: geom.Radians(45), MaxDist: 8}},
	}
	rows, err := runJobs(r, len(settings), func(i int) (Stats, error) {
		fc := settings[i].fc
		env, err := r.Build(Scenario{Seed: 1, Filter: &fc})
		if err != nil {
			return Stats{}, err
		}
		st, _, err := env.RunIsoMap()
		return st, err
	})
	if err != nil {
		return nil, err
	}
	for i, s := range settings {
		t.AddRow(s.label, rows[i].SinkReports, rows[i].Accuracy)
	}
	return t, nil
}

// Fig10Maps reproduces Fig. 10: TinyDB and Iso-Map contour maps at
// normalized node densities 4, 1 and 0.16, reporting the received reports
// and accuracy that accompany the paper's rendered maps.
func Fig10Maps(runs int) (*Table, error) { return defaultRunner().Fig10Maps(runs) }

// Fig10Maps is the Runner form of the package-level function.
func (r *Runner) Fig10Maps(runs int) (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "Contour mapping at densities 4 / 1 / 0.16",
		Columns: []string{"density", "nodes", "TinyDB accuracy", "Iso-Map accuracy", "Iso-Map sink reports"},
	}
	densities := []float64{4, 1, 0.16}
	rows, err := sweepAverage(r, len(densities), runs, func(p int, seed int64) ([]float64, error) {
		n := nodesAtDensity(densities[p])
		gridEnv, err := r.Build(Scenario{Nodes: n, Grid: true, Seed: seed})
		if err != nil {
			return nil, err
		}
		tdb, _, err := gridEnv.RunTinyDB()
		if err != nil {
			return nil, err
		}
		randEnv, err := r.Build(Scenario{Nodes: n, Seed: seed})
		if err != nil {
			return nil, err
		}
		iso, _, err := randEnv.RunIsoMap()
		if err != nil {
			return nil, err
		}
		return []float64{tdb.Accuracy, iso.Accuracy, float64(iso.SinkReports)}, nil
	})
	if err != nil {
		return nil, err
	}
	for p, d := range densities {
		t.AddRow(d, nodesAtDensity(d), rows[p][0], rows[p][1], rows[p][2])
	}
	return t, nil
}

// Fig11aAccuracyDensity reproduces Fig. 11a: mapping accuracy against node
// density for TinyDB and Iso-Map with two border tolerances.
func Fig11aAccuracyDensity(runs int) (*Table, error) {
	return defaultRunner().Fig11aAccuracyDensity(runs)
}

// Fig11aAccuracyDensity is the Runner form of the package-level function.
func (r *Runner) Fig11aAccuracyDensity(runs int) (*Table, error) {
	t := &Table{
		ID:      "fig11a",
		Title:   "Mapping accuracy vs node density",
		Columns: []string{"density", "TinyDB", "Iso-Map eps=0.05T", "Iso-Map eps=0.2T"},
	}
	rows, err := sweepAverage(r, len(sweepDensities), runs, func(p int, seed int64) ([]float64, error) {
		return r.accuracyTriple(nodesAtDensity(sweepDensities[p]), 0, seed)
	})
	if err != nil {
		return nil, err
	}
	for p, d := range sweepDensities {
		t.AddRow(d, rows[p][0], rows[p][1], rows[p][2])
	}
	return t, nil
}

// Fig11bAccuracyFailures reproduces Fig. 11b: mapping accuracy against the
// node-failure ratio.
func Fig11bAccuracyFailures(runs int) (*Table, error) {
	return defaultRunner().Fig11bAccuracyFailures(runs)
}

// Fig11bAccuracyFailures is the Runner form of the package-level function.
func (r *Runner) Fig11bAccuracyFailures(runs int) (*Table, error) {
	t := &Table{
		ID:      "fig11b",
		Title:   "Mapping accuracy vs node failures",
		Columns: []string{"failure ratio", "TinyDB", "Iso-Map eps=0.05T", "Iso-Map eps=0.2T"},
	}
	fails := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	rows, err := sweepAverage(r, len(fails), runs, func(p int, seed int64) ([]float64, error) {
		return r.accuracyTriple(2500, fails[p], seed)
	})
	if err != nil {
		return nil, err
	}
	for p, fail := range fails {
		t.AddRow(fail, rows[p][0], rows[p][1], rows[p][2])
	}
	return t, nil
}

// accuracyTriple runs TinyDB and the two Iso-Map epsilon settings on one
// seed, returning their accuracies. The two Iso-Map runs differ only in
// epsilon, so they share one cached deployment.
func (r *Runner) accuracyTriple(n int, fail float64, seed int64) ([]float64, error) {
	gridEnv, err := r.Build(Scenario{Nodes: n, Grid: true, Seed: seed, FailFraction: fail})
	if err != nil {
		return nil, err
	}
	tdb, _, err := gridEnv.RunTinyDB()
	if err != nil {
		return nil, err
	}
	isoNarrow, err := r.isoMapAccuracy(n, fail, seed, 0.05)
	if err != nil {
		return nil, err
	}
	isoWide, err := r.isoMapAccuracy(n, fail, seed, 0.2)
	if err != nil {
		return nil, err
	}
	return []float64{tdb.Accuracy, isoNarrow, isoWide}, nil
}

func (r *Runner) isoMapAccuracy(n int, fail float64, seed int64, epsFraction float64) (float64, error) {
	env, err := r.Build(Scenario{
		Nodes:        n,
		Seed:         seed,
		FailFraction: fail,
		Epsilon:      epsFraction * 2, // Step = 2
	})
	if err != nil {
		return 0, err
	}
	st, _, err := env.RunIsoMap()
	if err != nil {
		return 0, err
	}
	return st.Accuracy, nil
}

// Fig12aHausdorffDensity reproduces Fig. 12a: the Hausdorff distance
// between estimated and true isolines against node density, for Iso-Map on
// random and grid deployments and for TinyDB.
func Fig12aHausdorffDensity(runs int) (*Table, error) {
	return defaultRunner().Fig12aHausdorffDensity(runs)
}

// Fig12aHausdorffDensity is the Runner form of the package-level function.
func (r *Runner) Fig12aHausdorffDensity(runs int) (*Table, error) {
	t := &Table{
		ID:      "fig12a",
		Title:   "Isoline Hausdorff distance vs node density",
		Columns: []string{"density", "Iso-Map random", "Iso-Map grid", "TinyDB"},
	}
	rows, err := sweepAverage(r, len(sweepDensities), runs, func(p int, seed int64) ([]float64, error) {
		return r.hausdorffTriple(nodesAtDensity(sweepDensities[p]), 0, seed)
	})
	if err != nil {
		return nil, err
	}
	for p, d := range sweepDensities {
		t.AddRow(d, rows[p][0], rows[p][1], rows[p][2])
	}
	return t, nil
}

// Fig12bHausdorffFailures reproduces Fig. 12b: Hausdorff distance against
// the node-failure ratio.
func Fig12bHausdorffFailures(runs int) (*Table, error) {
	return defaultRunner().Fig12bHausdorffFailures(runs)
}

// Fig12bHausdorffFailures is the Runner form of the package-level function.
func (r *Runner) Fig12bHausdorffFailures(runs int) (*Table, error) {
	t := &Table{
		ID:      "fig12b",
		Title:   "Isoline Hausdorff distance vs node failures",
		Columns: []string{"failure ratio", "Iso-Map random", "Iso-Map grid", "TinyDB"},
	}
	fails := []float64{0, 0.1, 0.2, 0.3, 0.4}
	rows, err := sweepAverage(r, len(fails), runs, func(p int, seed int64) ([]float64, error) {
		return r.hausdorffTriple(2500, fails[p], seed)
	})
	if err != nil {
		return nil, err
	}
	for p, fail := range fails {
		t.AddRow(fail, rows[p][0], rows[p][1], rows[p][2])
	}
	return t, nil
}

// hausdorffTriple runs Iso-Map on random and grid deployments and TinyDB
// on the grid one. The Env reuse contract (each Run* re-senses) lets
// TinyDB run on the same grid Env after Iso-Map instead of rebuilding an
// identical deployment.
func (r *Runner) hausdorffTriple(n int, fail float64, seed int64) ([]float64, error) {
	randEnv, err := r.Build(Scenario{Nodes: n, Seed: seed, FailFraction: fail})
	if err != nil {
		return nil, err
	}
	isoRand, _, err := randEnv.RunIsoMap()
	if err != nil {
		return nil, err
	}
	gridEnv, err := r.Build(Scenario{Nodes: n, Grid: true, Seed: seed, FailFraction: fail})
	if err != nil {
		return nil, err
	}
	isoGrid, _, err := gridEnv.RunIsoMap()
	if err != nil {
		return nil, err
	}
	tdb, _, err := gridEnv.RunTinyDB()
	if err != nil {
		return nil, err
	}
	return []float64{isoRand.MeanHausdorff, isoGrid.MeanHausdorff, tdb.MeanHausdorff}, nil
}

// Fig13aFilterReports reproduces Fig. 13a: the number of reports received
// at the sink under different (s_a, s_d) filter settings.
func Fig13aFilterReports() (*Table, error) { return defaultRunner().Fig13aFilterReports() }

// Fig13aFilterReports is the Runner form of the package-level function.
func (r *Runner) Fig13aFilterReports() (*Table, error) { return r.fig13(false) }

// Fig13bFilterAccuracy reproduces Fig. 13b: the mapping accuracy under the
// same filter settings.
func Fig13bFilterAccuracy() (*Table, error) { return defaultRunner().Fig13bFilterAccuracy() }

// Fig13bFilterAccuracy is the Runner form of the package-level function.
func (r *Runner) Fig13bFilterAccuracy() (*Table, error) { return r.fig13(true) }

func (r *Runner) fig13(accuracy bool) (*Table, error) {
	id, title, col := "fig13a", "Sink reports vs filter thresholds", "sink reports"
	if accuracy {
		id, title, col = "fig13b", "Mapping accuracy vs filter thresholds", "accuracy"
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"sa (deg)", "sd", col},
	}
	sas := []float64{0, 15, 30, 45, 60}
	sds := []float64{0, 2, 4, 6, 8}
	// All 25 (sa, sd) cells share one cached deployment and fan out as
	// independent jobs.
	rows, err := runJobs(r, len(sas)*len(sds), func(i int) (Stats, error) {
		fc := core.FilterConfig{Enabled: true, MaxAngle: geom.Radians(sas[i/len(sds)]), MaxDist: sds[i%len(sds)]}
		env, err := r.Build(Scenario{Seed: 1, Filter: &fc})
		if err != nil {
			return Stats{}, err
		}
		st, _, err := env.RunIsoMap()
		return st, err
	})
	if err != nil {
		return nil, err
	}
	for i, st := range rows {
		sa, sd := sas[i/len(sds)], sds[i%len(sds)]
		if accuracy {
			t.AddRow(sa, sd, st.Accuracy)
		} else {
			t.AddRow(sa, sd, st.SinkReports)
		}
	}
	return t, nil
}

// Fig14aTrafficDiameter reproduces Fig. 14a: traffic overhead (KB) of
// TinyDB, INLR and Iso-Map against the network diameter at density 1.
func Fig14aTrafficDiameter() (*Table, error) { return defaultRunner().Fig14aTrafficDiameter() }

// Fig14aTrafficDiameter is the Runner form of the package-level function.
func (r *Runner) Fig14aTrafficDiameter() (*Table, error) {
	t := &Table{
		ID:      "fig14a",
		Title:   "Traffic overhead (KB) vs network diameter",
		Columns: []string{"field side", "nodes", "diameter (hops)", "TinyDB KB", "INLR KB", "Iso-Map KB"},
	}
	rows, err := runJobs(r, len(sweepSides), func(i int) ([]any, error) {
		return r.trafficRow(sweepSides[i], 1)
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

// Fig14bTrafficDensity reproduces Fig. 14b: traffic overhead against node
// density on the reference field.
func Fig14bTrafficDensity() (*Table, error) { return defaultRunner().Fig14bTrafficDensity() }

// Fig14bTrafficDensity is the Runner form of the package-level function.
func (r *Runner) Fig14bTrafficDensity() (*Table, error) {
	t := &Table{
		ID:      "fig14b",
		Title:   "Traffic overhead (KB) vs node density",
		Columns: []string{"density", "nodes", "diameter (hops)", "TinyDB KB", "INLR KB", "Iso-Map KB"},
	}
	densities := []float64{0.5, 1, 2, 4}
	rows, err := runJobs(r, len(densities), func(i int) ([]any, error) {
		row, err := r.trafficRow(50, densities[i])
		if err != nil {
			return nil, err
		}
		row[0] = densities[i]
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

// trafficRow runs the three protocols of Figs. 14-16 on one scenario.
func (r *Runner) trafficRow(side, density float64) ([]any, error) {
	n := int(math.Round(density * side * side))
	gridEnv, err := r.Build(Scenario{Nodes: n, FieldSide: side, Grid: true, Seed: 1})
	if err != nil {
		return nil, err
	}
	tdb, _, err := gridEnv.RunTinyDB()
	if err != nil {
		return nil, err
	}
	inl, err := gridEnv.RunINLR()
	if err != nil {
		return nil, err
	}
	randEnv, err := r.Build(Scenario{Nodes: n, FieldSide: side, Seed: 1})
	if err != nil {
		return nil, err
	}
	iso, _, err := randEnv.RunIsoMap()
	if err != nil {
		return nil, err
	}
	return []any{side, n, tdb.Diameter, tdb.TrafficKB, inl.TrafficKB, iso.TrafficKB}, nil
}

// Fig15aCompute reproduces Fig. 15a: per-node computational intensity of
// the three protocols against network size.
func Fig15aCompute() (*Table, error) { return defaultRunner().Fig15aCompute() }

// Fig15aCompute is the Runner form of the package-level function.
func (r *Runner) Fig15aCompute() (*Table, error) {
	t := &Table{
		ID:      "fig15a",
		Title:   "Per-node computational intensity vs network size",
		Columns: []string{"field side", "nodes", "TinyDB ops", "INLR ops", "Iso-Map ops"},
	}
	rows, err := runJobs(r, len(sweepSides), func(i int) ([3]Stats, error) {
		return r.threeProtocolStats(sweepSides[i])
	})
	if err != nil {
		return nil, err
	}
	for i, side := range sweepSides {
		t.AddRow(side, rows[i][0].Nodes, rows[i][0].MeanOps, rows[i][1].MeanOps, rows[i][2].MeanOps)
	}
	return t, nil
}

// Fig15bComputeIsoMap reproduces Fig. 15b: the amplified Iso-Map view
// showing constant per-node intensity.
func Fig15bComputeIsoMap() (*Table, error) { return defaultRunner().Fig15bComputeIsoMap() }

// Fig15bComputeIsoMap is the Runner form of the package-level function.
func (r *Runner) Fig15bComputeIsoMap() (*Table, error) {
	t := &Table{
		ID:      "fig15b",
		Title:   "Iso-Map per-node computational intensity vs network size (amplified)",
		Columns: []string{"field side", "nodes", "Iso-Map ops/node"},
	}
	rows, err := runJobs(r, len(sweepSides), func(i int) (Stats, error) {
		side := sweepSides[i]
		env, err := r.Build(Scenario{Nodes: int(side * side), FieldSide: side, Seed: 1})
		if err != nil {
			return Stats{}, err
		}
		iso, _, err := env.RunIsoMap()
		return iso, err
	})
	if err != nil {
		return nil, err
	}
	for i, side := range sweepSides {
		t.AddRow(side, rows[i].Nodes, rows[i].MeanOps)
	}
	return t, nil
}

// Fig16Energy reproduces Fig. 16: per-node energy consumption of the three
// protocols against network size, under the Mica2 model.
func Fig16Energy() (*Table, error) { return defaultRunner().Fig16Energy() }

// Fig16Energy is the Runner form of the package-level function.
func (r *Runner) Fig16Energy() (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "Per-node energy (J) vs network size",
		Columns: []string{"field side", "nodes", "TinyDB J", "INLR J", "Iso-Map J"},
	}
	rows, err := runJobs(r, len(sweepSides), func(i int) ([3]Stats, error) {
		return r.threeProtocolStats(sweepSides[i])
	})
	if err != nil {
		return nil, err
	}
	for i, side := range sweepSides {
		t.AddRow(side, rows[i][0].Nodes, rows[i][0].MeanEnergyJ, rows[i][1].MeanEnergyJ, rows[i][2].MeanEnergyJ)
	}
	return t, nil
}

// threeProtocolStats runs TinyDB, INLR and Iso-Map at density 1 on a field
// of the given side, returning their stats in that order.
func (r *Runner) threeProtocolStats(side float64) ([3]Stats, error) {
	var out [3]Stats
	n := int(side * side)
	gridEnv, err := r.Build(Scenario{Nodes: n, FieldSide: side, Grid: true, Seed: 1})
	if err != nil {
		return out, err
	}
	tdb, _, err := gridEnv.RunTinyDB()
	if err != nil {
		return out, err
	}
	inl, err := gridEnv.RunINLR()
	if err != nil {
		return out, err
	}
	randEnv, err := r.Build(Scenario{Nodes: n, FieldSide: side, Seed: 1})
	if err != nil {
		return out, err
	}
	iso, _, err := randEnv.RunIsoMap()
	if err != nil {
		return out, err
	}
	out[0], out[1], out[2] = tdb, inl, iso
	return out, nil
}

// AllFigures regenerates every table and figure with the given averaging
// runs, in paper order.
func AllFigures(runs int) ([]*Table, error) { return defaultRunner().AllFigures(runs) }

// AllFigures is the Runner form of the package-level function. The figure
// generators themselves run concurrently; all protocol work inside them
// executes as jobs on the runner's bounded pool, and the tables come back
// in paper order regardless of completion order.
func (r *Runner) AllFigures(runs int) ([]*Table, error) {
	type gen struct {
		name string
		fn   func() (*Table, error)
	}
	gens := []gen{
		{"table1", r.Table1Overhead},
		{"fig7", func() (*Table, error) { return r.Fig7GradientError(runs) }},
		{"fig9", r.Fig9ReportDensity},
		{"fig10", func() (*Table, error) { return r.Fig10Maps(runs) }},
		{"fig11a", func() (*Table, error) { return r.Fig11aAccuracyDensity(runs) }},
		{"fig11b", func() (*Table, error) { return r.Fig11bAccuracyFailures(runs) }},
		{"fig12a", func() (*Table, error) { return r.Fig12aHausdorffDensity(runs) }},
		{"fig12b", func() (*Table, error) { return r.Fig12bHausdorffFailures(runs) }},
		{"fig13a", r.Fig13aFilterReports},
		{"fig13b", r.Fig13bFilterAccuracy},
		{"fig14a", r.Fig14aTrafficDiameter},
		{"fig14b", r.Fig14bTrafficDensity},
		{"fig15a", r.Fig15aCompute},
		{"fig15b", r.Fig15bComputeIsoMap},
		{"fig16", r.Fig16Energy},
	}
	out := make([]*Table, len(gens))
	errs := make([]error, len(gens))
	var wg sync.WaitGroup
	for i := range gens {
		wg.Add(1)
		// Generators hold no pool slot themselves — only their cell jobs
		// do — so nested fan-out cannot deadlock the pool.
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = gens[i].fn()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", gens[i].name, err)
		}
	}
	return out, nil
}
