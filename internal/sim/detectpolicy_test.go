package sim

import "testing"

func TestExtDetectPolicySweep(t *testing.T) {
	tb, err := ExtDetectPolicySweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	// At the sparsest density the edge-based policy must clearly beat the
	// epsilon band (its guaranteed crossing coverage is the whole point).
	sparse := tb.Rows[0]
	if parse(t, sparse[6]) <= parse(t, sparse[3]) {
		t.Errorf("density %s: edge accuracy %s not above Def. 3.1 %s",
			sparse[0], sparse[6], sparse[3])
	}
	// At every density both policies produce usable sink report counts.
	for _, row := range tb.Rows {
		if parse(t, row[2]) <= 0 || parse(t, row[5]) <= 0 {
			t.Errorf("density %s: degenerate sink counts %s / %s", row[0], row[2], row[5])
		}
	}
	// At high density the two accuracies converge (within a few points).
	dense := tb.Rows[len(tb.Rows)-1]
	if diff := parse(t, dense[6]) - parse(t, dense[3]); diff < -0.05 || diff > 0.1 {
		t.Errorf("density %s: accuracies diverge: %s vs %s", dense[0], dense[3], dense[6])
	}
}
