package sim

import (
	"strings"
	"testing"

	"isomap/internal/core"
	"isomap/internal/field"
)

// render concatenates every table of a figure set the way cmd/experiments
// prints them, so byte-level comparison matches the CLI contract.
func render(tables []*Table) string {
	var b strings.Builder
	for _, tb := range tables {
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestAllFiguresParallelDeterministic is the tentpole guarantee: the full
// figure set renders byte-identically whether the sweep cells run on one
// worker or race across eight.
func TestAllFiguresParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure set in -short mode")
	}
	seq, err := NewRunner(1).AllFigures(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(8).AllFigures(1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := render(seq), render(par)
	if a != b {
		t.Errorf("parallel output differs from sequential:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", a, b)
	}
}

// TestWithDefaultsNonSquareTrace is the regression test for the density
// default assuming a square field: a 40x10 trace has area 400, so 400
// nodes are density 1 and the default radio must be 1.5 — the old
// Nodes/FieldSide^2 formula saw density 0.25 and picked 3.0.
func TestWithDefaultsNonSquareTrace(t *testing.T) {
	vals := [][]float64{{6, 8, 10, 12}, {6, 8, 10, 12}}
	trace, err := field.NewGridField(vals, 0, 0, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	s := Scenario{Nodes: 400, Trace: trace}.withDefaults()
	if s.FieldSide != 40 {
		t.Errorf("FieldSide = %v, want 40 (trace x extent)", s.FieldSide)
	}
	if s.Radio != 1.5 {
		t.Errorf("Radio = %v, want 1.5 (density 1 over the true 40x10 area)", s.Radio)
	}

	env, err := Build(Scenario{Nodes: 400, Trace: trace, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := env.nodeSpacing(); got != 1 {
		t.Errorf("nodeSpacing = %v, want 1 (sqrt(400 area / 400 nodes))", got)
	}
}

// TestExplicitZeroEpsilon checks the zero-value sentinel fix: an explicit
// Epsilon of 0 marked with EpsilonSet must reach query validation (which
// rejects it) instead of being silently replaced by the default.
func TestExplicitZeroEpsilon(t *testing.T) {
	if s := (Scenario{}).withDefaults(); s.Epsilon != 0.1 {
		t.Errorf("implicit epsilon = %v, want default 0.1", s.Epsilon)
	}
	if s := (Scenario{Epsilon: 0, EpsilonSet: true}).withDefaults(); s.Epsilon != 0 {
		t.Errorf("explicit zero epsilon rewritten to %v", s.Epsilon)
	}
	if _, err := Build(Scenario{Nodes: 100, FieldSide: 10, Seed: 1, EpsilonSet: true}); err == nil {
		t.Error("explicit zero epsilon should fail query validation, got nil error")
	}
}

// TestExplicitFilterDisabled checks the companion sentinel: an explicit
// disabled filter config survives defaulting.
func TestExplicitFilterDisabled(t *testing.T) {
	s := Scenario{Filter: &core.FilterConfig{Enabled: false}}.withDefaults()
	if s.Filter.Enabled {
		t.Error("explicit Enabled:false filter was re-enabled by defaulting")
	}
	if s := (Scenario{}).withDefaults(); !s.Filter.Enabled {
		t.Error("implicit filter should default to enabled")
	}
}

// TestEnvRunOrderIndependence pins the Env reuse contract: because every
// Run* re-senses the field, a protocol's stats do not depend on what ran
// before it on the same Env.
func TestEnvRunOrderIndependence(t *testing.T) {
	scn := Scenario{Nodes: 400, FieldSide: 20, Grid: true, Seed: 3}
	a, err := Build(scn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(scn)
	if err != nil {
		t.Fatal(err)
	}

	isoFirst, _, err := a.RunIsoMap()
	if err != nil {
		t.Fatal(err)
	}
	tdbSecond, _, err := a.RunTinyDB()
	if err != nil {
		t.Fatal(err)
	}

	tdbFirst, _, err := b.RunTinyDB()
	if err != nil {
		t.Fatal(err)
	}
	isoSecond, _, err := b.RunIsoMap()
	if err != nil {
		t.Fatal(err)
	}

	if isoFirst != isoSecond {
		t.Errorf("Iso-Map stats depend on run order:\nfirst:  %+v\nsecond: %+v", isoFirst, isoSecond)
	}
	if tdbFirst != tdbSecond {
		t.Errorf("TinyDB stats depend on run order:\nfirst:  %+v\nsecond: %+v", tdbFirst, tdbSecond)
	}
}

// TestBuildClonesAreIsolated checks that two Envs built from the same
// cached deployment do not share mutable node state, while still sharing
// the immutable field and placement.
func TestBuildClonesAreIsolated(t *testing.T) {
	r := NewRunner(2)
	scn := Scenario{Nodes: 100, FieldSide: 10, Seed: 5}
	a, err := r.Build(scn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Build(scn)
	if err != nil {
		t.Fatal(err)
	}
	if a.Network == b.Network {
		t.Fatal("Build returned the same Network twice")
	}
	if a.Field != b.Field {
		t.Error("clones should share the cached field instance")
	}
	if a.Tree.Root() != b.Tree.Root() {
		t.Errorf("sinks differ: %v vs %v", a.Tree.Root(), b.Tree.Root())
	}

	a.Network.Node(0).Value = 12345
	a.Network.Node(0).Failed = true
	if b.Network.Node(0).Value == 12345 || b.Network.Node(0).Failed {
		t.Error("mutating one clone leaked into its sibling")
	}
}

// TestSweepAverageDeterministic checks the flattened cell indexing and the
// n/a skipping of the shared sweep helper.
func TestSweepAverageDeterministic(t *testing.T) {
	r := NewRunner(4)
	rows, err := sweepAverage(r, 2, 3, func(p int, seed int64) ([]float64, error) {
		if p == 1 && seed == 2 {
			return []float64{-1, float64(seed)}, nil // n/a first element
		}
		return []float64{float64(p*10) + float64(seed), float64(seed)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rows[0][0], 2.0; got != want { // (1+2+3)/3
		t.Errorf("rows[0][0] = %v, want %v", got, want)
	}
	if got, want := rows[1][0], 12.0; got != want { // (11+13)/2, seed 2 skipped
		t.Errorf("rows[1][0] = %v, want %v", got, want)
	}
	if got, want := rows[1][1], 2.0; got != want { // (1+2+3)/3
		t.Errorf("rows[1][1] = %v, want %v", got, want)
	}
}

// TestAverageVecsAllMissing checks the -1 sentinel when no sample is valid.
func TestAverageVecsAllMissing(t *testing.T) {
	got := averageVecs([][]float64{{-1, 4}, {-1, 6}})
	if got[0] != -1 || got[1] != 5 {
		t.Errorf("averageVecs = %v, want [-1 5]", got)
	}
}
