package sim

import "testing"

func TestExtLatencySweep(t *testing.T) {
	tb, err := ExtLatencySweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	// Rows alternate filter on/off per side; with filtering the epoch is
	// shorter and buffers smaller.
	for i := 0; i < len(tb.Rows); i += 2 {
		on := tb.Rows[i]
		off := tb.Rows[i+1]
		if on[2] != "on" || off[2] != "off" {
			t.Fatalf("row labels: %v / %v", on[2], off[2])
		}
		if parse(t, on[3]) > parse(t, off[3]) {
			t.Errorf("side %s: filtered epoch %s longer than unfiltered %s", on[0], on[3], off[3])
		}
		if parse(t, on[4]) > parse(t, off[4]) {
			t.Errorf("side %s: filtered queue %s above unfiltered %s", on[0], on[4], off[4])
		}
	}
}

func TestExtLocalizeSweep(t *testing.T) {
	tb, err := ExtLocalizeSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	// The GPS row (last) has zero position error and the best accuracy up
	// to noise; position error shrinks as anchors grow.
	gps := tb.Rows[len(tb.Rows)-1]
	if parse(t, gps[1]) != 0 {
		t.Errorf("GPS position error = %s", gps[1])
	}
	// DV-hop errors stay bounded (a couple of radio ranges) at every
	// anchor count; the count itself mostly trades flooding cost, not
	// accuracy, so no monotonicity is asserted.
	accGPS := parse(t, gps[2])
	for _, row := range tb.Rows[:len(tb.Rows)-1] {
		if e := parse(t, row[1]); e <= 0 || e > 6 {
			t.Errorf("%s anchors: position error %v out of plausible range", row[0], e)
		}
		// Localization always costs accuracy relative to GPS.
		if acc := parse(t, row[2]); acc >= accGPS {
			t.Errorf("%s anchors: accuracy %v not below GPS %v", row[0], acc, accGPS)
		}
	}
}
