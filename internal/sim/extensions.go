package sim

import (
	"isomap/internal/baseline/inlr"
	"isomap/internal/baseline/tinydb"
	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/energy"
	"isomap/internal/field"
	"isomap/internal/metrics"
	"isomap/internal/monitor"
)

// The extension experiments go beyond the paper's figures: they quantify
// the sensitivity knobs the paper mentions but does not sweep (sensing
// noise, the k-hop regression scope, an imperfect link layer) and the
// continuous-monitoring mode of its future work.

// ExtNoiseSweep measures mapping accuracy and received reports against
// Gaussian sensing noise. The border-region test of Definition 3.1
// compares readings against isolevels directly, so noise first inflates
// the isoline-node population and then corrupts the map.
func ExtNoiseSweep(runs int) (*Table, error) {
	t := &Table{
		ID:      "ext-noise",
		Title:   "Iso-Map vs sensing noise (sigma in meters)",
		Columns: []string{"sigma", "generated", "sink reports", "accuracy"},
	}
	for _, sigma := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4} {
		vals, err := averageOver(runs, func(seed int64) ([]float64, error) {
			env, err := Build(Scenario{Seed: seed})
			if err != nil {
				return nil, err
			}
			env.Network.SenseWithNoise(env.Field, sigma, seed+100)
			res, err := core.RunSensed(env.Tree, env.Query, *env.Scenario.Filter)
			if err != nil {
				return nil, err
			}
			m := contour.Reconstruct(res.Reports, env.Query.Levels,
				field.BoundsRect(env.Field), res.SinkValue, contour.DefaultOptions())
			acc := field.Agreement(env.truthRaster(), m.Raster(RasterRes, RasterRes))
			return []float64{float64(res.Generated), float64(len(res.Reports)), acc}, nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(sigma, vals[0], vals[1], vals[2])
	}
	return t, nil
}

// ExtScopeSweep measures the k-hop regression scope on a sparse
// deployment: gradient precision against local traffic cost (Sec. 3.3's
// adjustable query scope).
func ExtScopeSweep(runs int) (*Table, error) {
	t := &Table{
		ID:      "ext-scope",
		Title:   "Regression scope k (sparse deployment, density 0.36)",
		Columns: []string{"k hops", "mean grad error (deg)", "accuracy", "traffic KB"},
	}
	for _, k := range []int{1, 2, 3} {
		vals, err := averageOver(runs, func(seed int64) ([]float64, error) {
			env, err := Build(Scenario{Nodes: nodesAtDensity(0.36), Seed: seed})
			if err != nil {
				return nil, err
			}
			env.Query.HopScope = k
			_, meanErr, _, err := env.gradientErrorStats()
			if err != nil {
				return nil, err
			}
			st, _, err := env.RunIsoMap()
			if err != nil {
				return nil, err
			}
			return []float64{meanErr, st.Accuracy, st.TrafficKB}, nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(k, vals[0], vals[1], vals[2])
	}
	return t, nil
}

// ExtLossSweep recomputes Fig. 16's per-node energy under an imperfect
// link layer with ARQ retransmissions.
func ExtLossSweep() (*Table, error) {
	t := &Table{
		ID:      "ext-loss",
		Title:   "Per-node energy (J) vs link loss rate, n=2500",
		Columns: []string{"loss rate", "TinyDB J", "INLR J", "Iso-Map J"},
	}
	counters, err := lossCounters()
	if err != nil {
		return nil, err
	}
	for _, loss := range []float64{0, 0.1, 0.2, 0.3} {
		lm, err := energy.NewLinkModel(loss)
		if err != nil {
			return nil, err
		}
		t.AddRow(loss,
			energy.MeanNodeJoulesWithLoss(counters[0], lm),
			energy.MeanNodeJoulesWithLoss(counters[1], lm),
			energy.MeanNodeJoulesWithLoss(counters[2], lm))
	}
	return t, nil
}

// lossCounters runs the Fig. 16 trio once at the reference size and
// returns their raw counters for energy post-processing.
func lossCounters() ([3]*metrics.Counters, error) {
	var out [3]*metrics.Counters
	gridEnv, err := Build(Scenario{Grid: true, Seed: 1})
	if err != nil {
		return out, err
	}
	tdbRes, err := tinydb.Run(gridEnv.Tree, gridEnv.Field)
	if err != nil {
		return out, err
	}
	inlRes, err := inlr.Run(gridEnv.Tree, gridEnv.Field,
		inlr.DefaultConfig(gridEnv.Scenario.Levels.Step, gridEnv.nodeSpacing()))
	if err != nil {
		return out, err
	}
	randEnv, err := Build(Scenario{Seed: 1})
	if err != nil {
		return out, err
	}
	isoRes, err := core.Run(randEnv.Tree, randEnv.Field, randEnv.Query, *randEnv.Scenario.Filter)
	if err != nil {
		return out, err
	}
	out[0], out[1], out[2] = tdbRes.Counters, inlRes.Counters, isoRes.Counters
	return out, nil
}

// ExtMonitorRounds traces a continuous-monitoring session over the silting
// seabed, with and without temporal suppression, reporting per-round
// traffic and delivered reports. Rounds are spaced monitorTimeStep apart:
// temporal suppression is the win when the field drifts slowly relative
// to the monitoring period (fast change re-reports everything anyway).
func ExtMonitorRounds(rounds int) (*Table, error) {
	const monitorTimeStep = 0.25
	if rounds < 1 {
		rounds = 8
	}
	t := &Table{
		ID:      "ext-monitor",
		Title:   "Continuous monitoring of the silting route (dt=0.25, storm at t=4..6)",
		Columns: []string{"t", "delivered (temporal)", "traffic KB (temporal)", "delivered (plain)", "traffic KB (plain)"},
	}
	runSession := func(temporal monitor.TemporalConfig) ([]*monitor.RoundStats, error) {
		env, err := Build(Scenario{Seed: 7})
		if err != nil {
			return nil, err
		}
		dyn := field.DefaultSilting(env.Field)
		m, err := monitor.New(env.Tree, monitor.Config{
			Query:    env.Query,
			Filter:   *env.Scenario.Filter,
			Temporal: temporal,
			Options:  contour.DefaultOptions(),
		})
		if err != nil {
			return nil, err
		}
		var out []*monitor.RoundStats
		for i := 0; i < rounds; i++ {
			st, err := m.Round(dyn.At(float64(i) * monitorTimeStep))
			if err != nil {
				return nil, err
			}
			out = append(out, st)
		}
		return out, nil
	}
	withTemporal, err := runSession(monitor.DefaultTemporal())
	if err != nil {
		return nil, err
	}
	plain, err := runSession(monitor.TemporalConfig{})
	if err != nil {
		return nil, err
	}
	for i := range withTemporal {
		t.AddRow(float64(i)*monitorTimeStep,
			withTemporal[i].Delivered, withTemporal[i].TrafficKB,
			plain[i].Delivered, plain[i].TrafficKB)
	}
	return t, nil
}
