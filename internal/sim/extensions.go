package sim

import (
	"isomap/internal/baseline/inlr"
	"isomap/internal/baseline/tinydb"
	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/energy"
	"isomap/internal/field"
	"isomap/internal/metrics"
	"isomap/internal/monitor"
)

// The extension experiments go beyond the paper's figures: they quantify
// the sensitivity knobs the paper mentions but does not sweep (sensing
// noise, the k-hop regression scope, an imperfect link layer) and the
// continuous-monitoring mode of its future work.

// ExtNoiseSweep measures mapping accuracy and received reports against
// Gaussian sensing noise. The border-region test of Definition 3.1
// compares readings against isolevels directly, so noise first inflates
// the isoline-node population and then corrupts the map.
func ExtNoiseSweep(runs int) (*Table, error) { return defaultRunner().ExtNoiseSweep(runs) }

// ExtNoiseSweep is the Runner form of the package-level function.
func (r *Runner) ExtNoiseSweep(runs int) (*Table, error) {
	t := &Table{
		ID:      "ext-noise",
		Title:   "Iso-Map vs sensing noise (sigma in meters)",
		Columns: []string{"sigma", "generated", "sink reports", "accuracy"},
	}
	sigmas := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4}
	rows, err := sweepAverage(r, len(sigmas), runs, func(p int, seed int64) ([]float64, error) {
		env, err := r.Build(Scenario{Seed: seed})
		if err != nil {
			return nil, err
		}
		env.Network.SenseWithNoise(env.Field, sigmas[p], seed+100)
		res, err := core.RunSensed(env.Tree, env.Query, *env.Scenario.Filter)
		if err != nil {
			return nil, err
		}
		m := contour.Reconstruct(res.Reports, env.Query.Levels,
			field.BoundsRect(env.Field), res.SinkValue, contour.DefaultOptions())
		acc := field.Agreement(env.truthRaster(), env.estRaster(m))
		return []float64{float64(res.Generated), float64(len(res.Reports)), acc}, nil
	})
	if err != nil {
		return nil, err
	}
	for p, sigma := range sigmas {
		t.AddRow(sigma, rows[p][0], rows[p][1], rows[p][2])
	}
	return t, nil
}

// ExtScopeSweep measures the k-hop regression scope on a sparse
// deployment: gradient precision against local traffic cost (Sec. 3.3's
// adjustable query scope).
func ExtScopeSweep(runs int) (*Table, error) { return defaultRunner().ExtScopeSweep(runs) }

// ExtScopeSweep is the Runner form of the package-level function.
func (r *Runner) ExtScopeSweep(runs int) (*Table, error) {
	t := &Table{
		ID:      "ext-scope",
		Title:   "Regression scope k (sparse deployment, density 0.36)",
		Columns: []string{"k hops", "mean grad error (deg)", "accuracy", "traffic KB"},
	}
	scopes := []int{1, 2, 3}
	rows, err := sweepAverage(r, len(scopes), runs, func(p int, seed int64) ([]float64, error) {
		env, err := r.Build(Scenario{Nodes: nodesAtDensity(0.36), Seed: seed})
		if err != nil {
			return nil, err
		}
		env.Query.HopScope = scopes[p]
		_, meanErr, _, err := env.gradientErrorStats()
		if err != nil {
			return nil, err
		}
		st, _, err := env.RunIsoMap()
		if err != nil {
			return nil, err
		}
		return []float64{meanErr, st.Accuracy, st.TrafficKB}, nil
	})
	if err != nil {
		return nil, err
	}
	for p, k := range scopes {
		t.AddRow(k, rows[p][0], rows[p][1], rows[p][2])
	}
	return t, nil
}

// ExtLossSweep recomputes Fig. 16's per-node energy under an imperfect
// link layer with ARQ retransmissions.
func ExtLossSweep() (*Table, error) { return defaultRunner().ExtLossSweep() }

// ExtLossSweep is the Runner form of the package-level function.
func (r *Runner) ExtLossSweep() (*Table, error) {
	t := &Table{
		ID:      "ext-loss",
		Title:   "Per-node energy (J) vs link loss rate, n=2500",
		Columns: []string{"loss rate", "TinyDB J", "INLR J", "Iso-Map J"},
	}
	counters, err := r.lossCounters()
	if err != nil {
		return nil, err
	}
	for _, loss := range []float64{0, 0.1, 0.2, 0.3} {
		lm, err := energy.NewLinkModel(loss)
		if err != nil {
			return nil, err
		}
		t.AddRow(loss,
			energy.MeanNodeJoulesWithLoss(counters[0], lm),
			energy.MeanNodeJoulesWithLoss(counters[1], lm),
			energy.MeanNodeJoulesWithLoss(counters[2], lm))
	}
	return t, nil
}

// lossCounters runs the Fig. 16 trio once at the reference size as three
// pool jobs and returns their raw counters for energy post-processing.
func (r *Runner) lossCounters() ([3]*metrics.Counters, error) {
	var out [3]*metrics.Counters
	counters, err := runJobs(r, 3, func(i int) (*metrics.Counters, error) {
		env, err := r.Build(Scenario{Grid: i != 2, Seed: 1})
		if err != nil {
			return nil, err
		}
		switch i {
		case 0:
			res, err := tinydb.Run(env.Tree, env.Field)
			if err != nil {
				return nil, err
			}
			return res.Counters, nil
		case 1:
			res, err := inlr.Run(env.Tree, env.Field,
				inlr.DefaultConfig(env.Scenario.Levels.Step, env.nodeSpacing()))
			if err != nil {
				return nil, err
			}
			return res.Counters, nil
		default:
			res, err := core.Run(env.Tree, env.Field, env.Query, *env.Scenario.Filter)
			if err != nil {
				return nil, err
			}
			return res.Counters, nil
		}
	})
	if err != nil {
		return out, err
	}
	copy(out[:], counters)
	return out, nil
}

// ExtMonitorRounds traces a continuous-monitoring session over the silting
// seabed, with and without temporal suppression, reporting per-round
// traffic and delivered reports. Rounds are spaced monitorTimeStep apart:
// temporal suppression is the win when the field drifts slowly relative
// to the monitoring period (fast change re-reports everything anyway).
func ExtMonitorRounds(rounds int) (*Table, error) { return defaultRunner().ExtMonitorRounds(rounds) }

// ExtMonitorRounds is the Runner form of the package-level function; the
// two sessions (with and without temporal suppression) run as independent
// jobs over their own Envs.
func (r *Runner) ExtMonitorRounds(rounds int) (*Table, error) {
	const monitorTimeStep = 0.25
	if rounds < 1 {
		rounds = 8
	}
	t := &Table{
		ID:      "ext-monitor",
		Title:   "Continuous monitoring of the silting route (dt=0.25, storm at t=4..6)",
		Columns: []string{"t", "delivered (temporal)", "traffic KB (temporal)", "delivered (plain)", "traffic KB (plain)"},
	}
	runSession := func(temporal monitor.TemporalConfig) ([]*monitor.RoundStats, error) {
		env, err := r.Build(Scenario{Seed: 7})
		if err != nil {
			return nil, err
		}
		dyn := field.DefaultSilting(env.Field)
		m, err := monitor.New(env.Tree, monitor.Config{
			Query:    env.Query,
			Filter:   *env.Scenario.Filter,
			Temporal: temporal,
			Options:  contour.DefaultOptions(),
		})
		if err != nil {
			return nil, err
		}
		var out []*monitor.RoundStats
		for i := 0; i < rounds; i++ {
			st, err := m.Round(dyn.At(float64(i) * monitorTimeStep))
			if err != nil {
				return nil, err
			}
			out = append(out, st)
		}
		return out, nil
	}
	configs := []monitor.TemporalConfig{monitor.DefaultTemporal(), {}}
	sessions, err := runJobs(r, len(configs), func(i int) ([]*monitor.RoundStats, error) {
		return runSession(configs[i])
	})
	if err != nil {
		return nil, err
	}
	withTemporal, plain := sessions[0], sessions[1]
	for i := range withTemporal {
		t.AddRow(float64(i)*monitorTimeStep,
			withTemporal[i].Delivered, withTemporal[i].TrafficKB,
			plain[i].Delivered, plain[i].TrafficKB)
	}
	return t, nil
}
