package sim

import (
	"strings"
	"testing"
)

func TestTableCSV(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tb.AddRow(1.5, "plain")
	tb.AddRow(-1.0, `quo"te,comma`)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), csv)
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1.5,plain" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != `-,"quo""te,comma"` {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestAllFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure regeneration is slow")
	}
	tables, err := AllFigures(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 15 {
		t.Fatalf("tables = %d, want 15", len(tables))
	}
	seen := make(map[string]bool)
	for _, tb := range tables {
		if tb.ID == "" || len(tb.Rows) == 0 || len(tb.Columns) == 0 {
			t.Fatalf("degenerate table %+v", tb)
		}
		if seen[tb.ID] {
			t.Fatalf("duplicate table id %s", tb.ID)
		}
		seen[tb.ID] = true
		// Every row has the full column count.
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Fatalf("%s: row width %d != %d columns", tb.ID, len(row), len(tb.Columns))
			}
		}
	}
}
