package sim

import (
	"fmt"

	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/localize"
	"isomap/internal/schedule"
)

// ExtLatencySweep derives the TAG-slotted collection-epoch profile of an
// Iso-Map round — latency, bottleneck buffering and idle listening — with
// and without in-network filtering, across network sizes.
func ExtLatencySweep() (*Table, error) { return defaultRunner().ExtLatencySweep() }

// ExtLatencySweep is the Runner form of the package-level function.
func (r *Runner) ExtLatencySweep() (*Table, error) {
	t := &Table{
		ID:    "ext-latency",
		Title: "Collection epoch under level-slotted scheduling (Iso-Map)",
		Columns: []string{
			"field side", "nodes", "filter", "epoch (s)", "max queue (reports)", "idle listen (J/node)",
		},
	}
	type cell struct {
		side     float64
		filtered bool
	}
	var cells []cell
	for _, side := range []float64{20, 50, 90} {
		for _, filtered := range []bool{true, false} {
			cells = append(cells, cell{side, filtered})
		}
	}
	type row struct {
		nodes int
		ep    *schedule.Epoch
	}
	rows, err := runJobs(r, len(cells), func(i int) (row, error) {
		side, filtered := cells[i].side, cells[i].filtered
		env, err := r.Build(Scenario{Nodes: int(side * side), FieldSide: side, Seed: 1})
		if err != nil {
			return row{}, err
		}
		env.Network.Sense(env.Field)
		generated := core.DetectIsolineNodes(env.Network, env.Query, nil)
		fc := core.FilterConfig{Enabled: false}
		if filtered {
			fc = core.DefaultFilterConfig()
		}
		d := core.DeliverReportsDetailed(env.Tree, routable(env, generated), fc, nil)
		ep, err := schedule.PlanEpoch(env.Tree, d, core.ReportBytes)
		if err != nil {
			return row{}, err
		}
		return row{nodes: env.Network.Len(), ep: ep}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		label := "off"
		if c.filtered {
			label = "on"
		}
		t.AddRow(c.side, rows[i].nodes, label,
			rows[i].ep.TotalSeconds, rows[i].ep.MaxQueueReports, rows[i].ep.IdleListenJoulesPerNode)
	}
	return t, nil
}

func routable(env *Env, reports []core.Report) []core.Report {
	out := make([]core.Report, 0, len(reports))
	for _, r := range reports {
		if env.Tree.Reachable(r.Source) {
			out = append(out, r)
		}
	}
	return out
}

// ExtLocalizeSweep measures what DV-hop localization (instead of GPS)
// costs the contour map: report positions are replaced by their DV-hop
// estimates before reconstruction, for growing anchor populations.
func ExtLocalizeSweep(runs int) (*Table, error) { return defaultRunner().ExtLocalizeSweep(runs) }

// ExtLocalizeSweep is the Runner form of the package-level function.
func (r *Runner) ExtLocalizeSweep(runs int) (*Table, error) {
	t := &Table{
		ID:      "ext-localize",
		Title:   "Mapping accuracy with DV-hop positions instead of GPS",
		Columns: []string{"anchors", "mean position error", "accuracy"},
	}
	type setting struct {
		label   string
		anchors int
	}
	settings := []setting{
		{"4", 4}, {"9", 9}, {"16", 16}, {"25", 25}, {"GPS", 0},
	}
	rows, err := sweepAverage(r, len(settings), runs, func(p int, seed int64) ([]float64, error) {
		return r.localizedAccuracy(settings[p].anchors, seed)
	})
	if err != nil {
		return nil, err
	}
	for p, s := range settings {
		t.AddRow(s.label, rows[p][0], rows[p][1])
	}
	return t, nil
}

// localizedAccuracy runs one Iso-Map round whose report positions come
// from DV-hop with the given anchor count (0 = true GPS positions),
// returning {mean position error, accuracy}.
func (r *Runner) localizedAccuracy(anchors int, seed int64) ([]float64, error) {
	env, err := r.Build(Scenario{Seed: seed})
	if err != nil {
		return nil, err
	}
	res, err := core.Run(env.Tree, env.Field, env.Query, *env.Scenario.Filter)
	if err != nil {
		return nil, err
	}
	reports := res.Reports
	posErr := 0.0
	if anchors > 0 {
		anchorIDs, err := localize.SpreadAnchors(env.Network, anchors)
		if err != nil {
			return nil, err
		}
		loc, err := localize.DVHop(env.Network, anchorIDs)
		if err != nil {
			return nil, err
		}
		posErr = loc.MeanError
		relocated := make([]core.Report, 0, len(reports))
		for _, rp := range reports {
			est, ok := loc.Estimated[rp.Source]
			if !ok {
				continue // unlocalized nodes cannot report a position
			}
			rp.Pos = est
			relocated = append(relocated, rp)
		}
		if len(relocated) == 0 {
			return nil, fmt.Errorf("sim: no localized reports")
		}
		reports = relocated
	}
	m := contour.Reconstruct(reports, env.Query.Levels,
		field.BoundsRect(env.Field), res.SinkValue, contour.DefaultOptions())
	acc := field.Agreement(env.truthRaster(), env.estRaster(m))
	return []float64{posErr, acc}, nil
}
