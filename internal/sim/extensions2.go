package sim

import (
	"fmt"

	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/localize"
	"isomap/internal/schedule"
)

// ExtLatencySweep derives the TAG-slotted collection-epoch profile of an
// Iso-Map round — latency, bottleneck buffering and idle listening — with
// and without in-network filtering, across network sizes.
func ExtLatencySweep() (*Table, error) {
	t := &Table{
		ID:    "ext-latency",
		Title: "Collection epoch under level-slotted scheduling (Iso-Map)",
		Columns: []string{
			"field side", "nodes", "filter", "epoch (s)", "max queue (reports)", "idle listen (J/node)",
		},
	}
	for _, side := range []float64{20, 50, 90} {
		for _, filtered := range []bool{true, false} {
			env, err := Build(Scenario{Nodes: int(side * side), FieldSide: side, Seed: 1})
			if err != nil {
				return nil, err
			}
			env.Network.Sense(env.Field)
			generated := core.DetectIsolineNodes(env.Network, env.Query, nil)
			fc := core.FilterConfig{Enabled: false}
			if filtered {
				fc = core.DefaultFilterConfig()
			}
			d := core.DeliverReportsDetailed(env.Tree, routable(env, generated), fc, nil)
			ep, err := schedule.PlanEpoch(env.Tree, d, core.ReportBytes)
			if err != nil {
				return nil, err
			}
			label := "off"
			if filtered {
				label = "on"
			}
			t.AddRow(side, env.Network.Len(), label,
				ep.TotalSeconds, ep.MaxQueueReports, ep.IdleListenJoulesPerNode)
		}
	}
	return t, nil
}

func routable(env *Env, reports []core.Report) []core.Report {
	out := make([]core.Report, 0, len(reports))
	for _, r := range reports {
		if env.Tree.Reachable(r.Source) {
			out = append(out, r)
		}
	}
	return out
}

// ExtLocalizeSweep measures what DV-hop localization (instead of GPS)
// costs the contour map: report positions are replaced by their DV-hop
// estimates before reconstruction, for growing anchor populations.
func ExtLocalizeSweep(runs int) (*Table, error) {
	t := &Table{
		ID:      "ext-localize",
		Title:   "Mapping accuracy with DV-hop positions instead of GPS",
		Columns: []string{"anchors", "mean position error", "accuracy"},
	}
	type setting struct {
		label   string
		anchors int
	}
	settings := []setting{
		{"4", 4}, {"9", 9}, {"16", 16}, {"25", 25}, {"GPS", 0},
	}
	for _, s := range settings {
		anchors := s.anchors
		vals, err := averageOver(runs, func(seed int64) ([]float64, error) {
			return localizedAccuracy(anchors, seed)
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(s.label, vals[0], vals[1])
	}
	return t, nil
}

// localizedAccuracy runs one Iso-Map round whose report positions come
// from DV-hop with the given anchor count (0 = true GPS positions),
// returning {mean position error, accuracy}.
func localizedAccuracy(anchors int, seed int64) ([]float64, error) {
	env, err := Build(Scenario{Seed: seed})
	if err != nil {
		return nil, err
	}
	res, err := core.Run(env.Tree, env.Field, env.Query, *env.Scenario.Filter)
	if err != nil {
		return nil, err
	}
	reports := res.Reports
	posErr := 0.0
	if anchors > 0 {
		anchorIDs, err := localize.SpreadAnchors(env.Network, anchors)
		if err != nil {
			return nil, err
		}
		loc, err := localize.DVHop(env.Network, anchorIDs)
		if err != nil {
			return nil, err
		}
		posErr = loc.MeanError
		relocated := make([]core.Report, 0, len(reports))
		for _, r := range reports {
			est, ok := loc.Estimated[r.Source]
			if !ok {
				continue // unlocalized nodes cannot report a position
			}
			r.Pos = est
			relocated = append(relocated, r)
		}
		if len(relocated) == 0 {
			return nil, fmt.Errorf("sim: no localized reports")
		}
		reports = relocated
	}
	m := contour.Reconstruct(reports, env.Query.Levels,
		field.BoundsRect(env.Field), res.SinkValue, contour.DefaultOptions())
	acc := field.Agreement(env.truthRaster(), m.Raster(RasterRes, RasterRes))
	return []float64{posErr, acc}, nil
}
