package sim

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtMACSweep(t *testing.T) {
	tb, err := ExtMACSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		pair := strings.Split(row[2], "/")
		if len(pair) != 2 {
			t.Fatalf("bad delivered/structural cell %q", row[2])
		}
		delivered, err := strconv.Atoi(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		structural, err := strconv.Atoi(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if row[1] == "off" && delivered != structural {
			t.Errorf("unfiltered packet-level %d != structural %d", delivered, structural)
		}
		if delivered == 0 || structural == 0 {
			t.Errorf("degenerate row %v", row)
		}
		// Physical bytes always exceed the perfect-link model (acks +
		// retries + batch framing).
		if ratio := parse(t, row[5]); ratio <= 1 {
			t.Errorf("physical/structural ratio %v should exceed 1", ratio)
		}
		if completion := parse(t, row[3]); completion <= 0 {
			t.Errorf("completion %v", completion)
		}
	}
	// Filtering shortens the packet-level collection too.
	if parse(t, tb.Rows[2][3]) >= parse(t, tb.Rows[3][3]) {
		t.Errorf("filtered completion %s not below unfiltered %s", tb.Rows[2][3], tb.Rows[3][3])
	}
}
