package sim

import (
	"fmt"

	"isomap/internal/core"
	"isomap/internal/desim"
	"isomap/internal/faults"
	"isomap/internal/field"
	"isomap/internal/monitor"
	"isomap/internal/network"
)

// RoundSource drives one deployment through successive monitoring rounds
// over a time-varying field: each Next() advances time by Dt, senses the
// field snapshot into the network, runs one protocol round and returns
// the sink's view of it. It is the report feed behind a long-lived
// contour server (cmd/isomapd) and the churn generator of the serve
// benchmark.
//
// Rounds are deterministic given (Env seed, Dt, mode and fault knobs):
// normal rounds run the analytic core protocol (or the packet engine
// when PacketRounds or Delta is set), and every FaultEvery-th round runs
// under a fresh fault plan seeded by the round number, so replays
// reproduce byte-identical report streams. A RoundSource is not safe for
// concurrent use.
type RoundSource struct {
	// Env is the deployment the rounds run on; its network is mutated
	// (sensing) by every round, so an Env must not back two sources.
	Env *Env
	// Dyn is the evolving field; nil selects DefaultSilting over the
	// Env's field.
	Dyn field.DynamicField
	// Dt is the time advanced per round; zero selects 0.5.
	Dt float64
	// FaultEvery, when positive, runs every FaultEvery-th round (1-based)
	// under fault injection: lossy channel plus mid-round crashes.
	FaultEvery int
	// FaultLoss is the faulted rounds' uniform loss rate; zero selects
	// 0.05.
	FaultLoss float64
	// FaultCrashFrac is the faulted rounds' crashing node fraction; zero
	// selects 0.05.
	FaultCrashFrac float64
	// Shards, when above 1, runs the packet-engine rounds on a sharded
	// engine (grid partition, Shards cells) with Workers goroutines per
	// window. The report stream is byte-identical at any shard count —
	// sharding is purely an execution strategy.
	Shards int
	// Workers bounds the sharded engine's parallelism; 0 selects
	// GOMAXPROCS. Ignored when Shards <= 1.
	Workers int
	// PacketRounds runs every round — not just faulted ones — on the
	// discrete-event packet engine in full-report mode. This is the
	// oracle configuration delta mode is compared against: same engine,
	// same radio, everything retransmitted every round.
	PacketRounds bool
	// Delta switches every round onto the packet engine's delta-report
	// protocol: nodes transmit only level-crossing deltas (see
	// desim.DeltaState), the sink maintains an aged belief
	// (monitor.AgedMap), and Reports carries the merged belief instead of
	// one round's deliveries. Fault plans and sharding compose as in full
	// mode.
	Delta bool
	// DeltaGradAngle is the delta mode's gradient-rotation re-report
	// threshold (radians); zero selects desim.DefaultGradAngle.
	DeltaGradAngle float64
	// DeltaExpiry bounds the sink belief's staleness: entries not
	// refreshed within DeltaExpiry rounds are aged out. Zero disables
	// aging.
	DeltaExpiry int

	round int
	delta *desim.DeltaState
	aged  *monitor.AgedMap
}

// Round returns the number of completed rounds: the next Next() call runs
// round Round()+1.
func (rs *RoundSource) Round() int { return rs.round }

// SeekRound positions the source so the next Next() runs round n+1.
//
// Outside delta mode the skipped rounds are not executed: rounds are
// memoryless given the Env — sensing overwrites every node value, crash
// marks are restored after faulted rounds, the dynamic field is a pure
// function of time, and fault plans are freshly seeded per round number —
// so a seeked source emits the exact byte-identical round stream a
// continuously advanced one would from round n+1 on.
//
// Delta mode carries cross-round protocol state (each node's
// transmitted-report memory, the sink's aged belief), so SeekRound
// replays rounds 1..n from a reset state instead. The replay is
// deterministic for the same reasons the rounds are, so a restored
// serving checkpoint still resumes byte-identically — it just costs n
// rounds of simulation.
func (rs *RoundSource) SeekRound(n int) error {
	if n < 0 {
		return fmt.Errorf("sim: SeekRound(%d): negative round", n)
	}
	if !rs.Delta {
		rs.round = n
		return nil
	}
	if rs.delta != nil {
		rs.delta.Reset()
	}
	if rs.aged != nil {
		rs.aged.Reset()
	}
	rs.round = 0
	for rs.round < n {
		if _, err := rs.Next(); err != nil {
			return fmt.Errorf("sim: SeekRound(%d): replaying round %d: %w", n, rs.round+1, err)
		}
	}
	return nil
}

// RoundData is one round's sink-side outcome.
type RoundData struct {
	// Round is the 1-based round number.
	Round int
	// T is the field time the round sensed.
	T float64
	// Reports are the reports the sink reconstructs from: one round's
	// deliveries, or in delta mode the merged aged belief.
	Reports []core.Report
	// SinkValue is the value sensed at the sink node.
	SinkValue float64
	// Faulted marks rounds run under fault injection.
	Faulted bool
	// Crashed is the number of nodes that crashed mid-round (faulted
	// rounds only; crashes are round-scoped and restored afterwards).
	Crashed int
	// DataFrames and TxBytes expose the radio traffic of packet-engine
	// rounds (zero for analytic rounds): first transmissions of data
	// frames, and total transmitted bytes including retries and acks.
	DataFrames int64
	TxBytes    int64
	// Delta carries the delta-mode round telemetry (nil outside delta
	// mode).
	Delta *DeltaRoundStats
}

// DeltaRoundStats is one delta round's protocol telemetry.
type DeltaRoundStats struct {
	// Crossings, Suppressed and Retired are the source-side tally:
	// level-transit reports transmitted, unchanged repeats withheld, and
	// withdrawal records sent.
	Crossings  int
	Suppressed int
	Retired    int
	// Expired counts sink belief entries aged out this round.
	Expired int
	// MapReports is the sink belief size after the round; MeanAgeRounds
	// its mean staleness in rounds.
	MapReports    int
	MeanAgeRounds float64
}

// Next runs one round and returns its sink-side data.
func (rs *RoundSource) Next() (*RoundData, error) {
	if rs.Dyn == nil {
		rs.Dyn = field.DefaultSilting(rs.Env.Field)
	}
	if rs.Dt <= 0 {
		rs.Dt = 0.5
	}
	rs.round++
	t := float64(rs.round) * rs.Dt
	f := rs.Dyn.At(t)
	rd := &RoundData{Round: rs.round, T: t}

	faulted := rs.FaultEvery > 0 && rs.round%rs.FaultEvery == 0
	if rs.Delta {
		return rs.nextDelta(f, rd, faulted)
	}
	if faulted || rs.PacketRounds {
		return rs.nextPacket(f, rd, faulted)
	}

	res, err := core.Run(rs.Env.Tree, f, rs.Env.Query, *rs.Env.Scenario.Filter)
	if err != nil {
		return nil, fmt.Errorf("sim: round %d: %w", rs.round, err)
	}
	rd.Reports = res.Reports
	rd.SinkValue = res.SinkValue
	return rd, nil
}

// roundPlan materializes the round's fault plan and radio config: a
// fresh plan per faulted round (plans are stateful — channel chains,
// crash schedules — and per-round seeding keeps replays exact), the
// default radio otherwise.
func (rs *RoundSource) roundPlan(faulted bool) (*faults.Plan, desim.RadioConfig, error) {
	cfg := desim.DefaultRadioConfig()
	if !faulted {
		return nil, cfg, nil
	}
	loss := rs.FaultLoss
	if loss == 0 {
		loss = 0.05
	}
	crash := rs.FaultCrashFrac
	if crash == 0 {
		crash = 0.05
	}
	plan, err := faults.New(faults.Config{
		Seed:          rs.Env.Scenario.Seed + int64(rs.round),
		Channel:       faults.ChannelBernoulli,
		LossRate:      loss,
		CrashFraction: crash,
		CrashStart:    0.05,
		CrashEnd:      0.6,
		Protect:       []network.NodeID{rs.Env.Tree.Root()},
	}, rs.Env.Network.Len())
	if err != nil {
		return nil, cfg, fmt.Errorf("sim: round %d fault plan: %w", rs.round, err)
	}
	cfg.FrameDeadline = 1.5
	return plan, cfg, nil
}

// nextPacket runs one full-report round on the packet engine.
func (rs *RoundSource) nextPacket(f field.Field, rd *RoundData, faulted bool) (*RoundData, error) {
	plan, cfg, err := rs.roundPlan(faulted)
	if err != nil {
		return nil, err
	}
	var res *desim.RoundResult
	if rs.Shards > 1 {
		res, err = desim.RunFullRoundShardedTraced(rs.Env.Tree, f, rs.Env.Query, *rs.Env.Scenario.Filter, cfg, plan, rs.Shards, rs.Workers, nil)
	} else {
		res, err = desim.RunFullRoundFaults(rs.Env.Tree, f, rs.Env.Query, *rs.Env.Scenario.Filter, cfg, plan)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: round %d faulted=%v: %w", rs.round, faulted, err)
	}
	rd.Reports = res.Delivered
	rd.SinkValue = rs.Env.Network.Node(rs.Env.Tree.Root()).Value
	rd.Faulted = faulted
	rd.Crashed = res.Crashed
	rd.DataFrames = int64(res.Radio.DataSent)
	rd.TxBytes = res.Counters.TotalTxBytes()
	return rd, nil
}

// nextDelta runs one delta-report round on the packet engine and folds
// the deliveries into the sink's aged belief.
func (rs *RoundSource) nextDelta(f field.Field, rd *RoundData, faulted bool) (*RoundData, error) {
	if rs.delta == nil {
		ds, err := desim.NewDeltaState(rs.Env.Network.Len(), desim.DeltaConfig{GradAngle: rs.DeltaGradAngle})
		if err != nil {
			return nil, fmt.Errorf("sim: delta state: %w", err)
		}
		am, err := monitor.NewAgedMap(monitor.AgedConfig{ExpiryRounds: rs.DeltaExpiry})
		if err != nil {
			return nil, fmt.Errorf("sim: aged map: %w", err)
		}
		rs.delta, rs.aged = ds, am
	}
	plan, cfg, err := rs.roundPlan(faulted)
	if err != nil {
		return nil, err
	}
	var res *desim.RoundResult
	if rs.Shards > 1 {
		res, err = desim.RunFullRoundDeltaSharded(rs.Env.Tree, f, rs.Env.Query, *rs.Env.Scenario.Filter, cfg, plan, rs.delta, rs.Shards, rs.Workers, nil)
	} else {
		res, err = desim.RunFullRoundDelta(rs.Env.Tree, f, rs.Env.Query, *rs.Env.Scenario.Filter, cfg, plan, rs.delta, nil)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: round %d delta: %w", rs.round, err)
	}
	st := rs.aged.Apply(rs.round, res.Delivered, nil)
	rd.Reports = rs.aged.Reports()
	rd.SinkValue = rs.Env.Network.Node(rs.Env.Tree.Root()).Value
	rd.Faulted = faulted
	rd.Crashed = res.Crashed
	rd.DataFrames = int64(res.Radio.DataSent)
	rd.TxBytes = res.Counters.TotalTxBytes()
	rd.Delta = &DeltaRoundStats{
		Crossings:     res.Crossings,
		Suppressed:    res.Suppressed,
		Retired:       res.Retired,
		Expired:       st.Expired,
		MapReports:    st.Size,
		MeanAgeRounds: rs.aged.MeanAge(rs.round),
	}
	return rd, nil
}
