package sim

import (
	"fmt"

	"isomap/internal/core"
	"isomap/internal/desim"
	"isomap/internal/faults"
	"isomap/internal/field"
	"isomap/internal/network"
)

// RoundSource drives one deployment through successive monitoring rounds
// over a time-varying field: each Next() advances time by Dt, senses the
// field snapshot into the network, runs one protocol round and returns
// the sink's view of it. It is the report feed behind a long-lived
// contour server (cmd/isomapd) and the churn generator of the serve
// benchmark.
//
// Rounds are deterministic given (Env seed, Dt, fault knobs): normal
// rounds run the analytic core protocol, and every FaultEvery-th round
// runs the full discrete-event radio with a fresh fault plan seeded by
// the round number, so replays reproduce byte-identical report streams.
// A RoundSource is not safe for concurrent use.
type RoundSource struct {
	// Env is the deployment the rounds run on; its network is mutated
	// (sensing) by every round, so an Env must not back two sources.
	Env *Env
	// Dyn is the evolving field; nil selects DefaultSilting over the
	// Env's field.
	Dyn field.DynamicField
	// Dt is the time advanced per round; zero selects 0.5.
	Dt float64
	// FaultEvery, when positive, runs every FaultEvery-th round (1-based)
	// under fault injection: lossy channel plus mid-round crashes.
	FaultEvery int
	// FaultLoss is the faulted rounds' uniform loss rate; zero selects
	// 0.05.
	FaultLoss float64
	// FaultCrashFrac is the faulted rounds' crashing node fraction; zero
	// selects 0.05.
	FaultCrashFrac float64
	// Shards, when above 1, runs the faulted rounds' discrete-event radio
	// on a sharded engine (grid partition, Shards cells) with Workers
	// goroutines per window. The report stream is byte-identical at any
	// shard count — sharding is purely an execution strategy.
	Shards int
	// Workers bounds the sharded engine's parallelism; 0 selects
	// GOMAXPROCS. Ignored when Shards <= 1.
	Workers int

	round int
}

// Round returns the number of completed rounds: the next Next() call runs
// round Round()+1.
func (rs *RoundSource) Round() int { return rs.round }

// SeekRound positions the source so the next Next() runs round n+1,
// without executing the skipped rounds. Rounds are memoryless given the
// Env — sensing overwrites every node value, crash marks are restored
// after faulted rounds, the dynamic field is a pure function of time, and
// fault plans are freshly seeded per round number — so a seeked source
// emits the exact byte-identical round stream a continuously advanced one
// would from round n+1 on. This is the whole of RoundSource "RNG
// position" recovery: per-round seeding collapses the stream state to the
// round counter, which is what a serving checkpoint persists.
func (rs *RoundSource) SeekRound(n int) error {
	if n < 0 {
		return fmt.Errorf("sim: SeekRound(%d): negative round", n)
	}
	rs.round = n
	return nil
}

// RoundData is one round's sink-side outcome.
type RoundData struct {
	// Round is the 1-based round number.
	Round int
	// T is the field time the round sensed.
	T float64
	// Reports are the reports delivered to the sink.
	Reports []core.Report
	// SinkValue is the value sensed at the sink node.
	SinkValue float64
	// Faulted marks rounds run under fault injection.
	Faulted bool
	// Crashed is the number of nodes that crashed mid-round (faulted
	// rounds only; crashes are round-scoped and restored afterwards).
	Crashed int
}

// Next runs one round and returns its sink-side data.
func (rs *RoundSource) Next() (*RoundData, error) {
	if rs.Dyn == nil {
		rs.Dyn = field.DefaultSilting(rs.Env.Field)
	}
	if rs.Dt <= 0 {
		rs.Dt = 0.5
	}
	rs.round++
	t := float64(rs.round) * rs.Dt
	f := rs.Dyn.At(t)
	rd := &RoundData{Round: rs.round, T: t}

	if rs.FaultEvery > 0 && rs.round%rs.FaultEvery == 0 {
		loss := rs.FaultLoss
		if loss == 0 {
			loss = 0.05
		}
		crash := rs.FaultCrashFrac
		if crash == 0 {
			crash = 0.05
		}
		// A fresh plan per round: plans are stateful (channel chains,
		// crash schedules), and per-round seeding keeps replays exact.
		plan, err := faults.New(faults.Config{
			Seed:          rs.Env.Scenario.Seed + int64(rs.round),
			Channel:       faults.ChannelBernoulli,
			LossRate:      loss,
			CrashFraction: crash,
			CrashStart:    0.05,
			CrashEnd:      0.6,
			Protect:       []network.NodeID{rs.Env.Tree.Root()},
		}, rs.Env.Network.Len())
		if err != nil {
			return nil, fmt.Errorf("sim: round %d fault plan: %w", rs.round, err)
		}
		cfg := desim.DefaultRadioConfig()
		cfg.FrameDeadline = 1.5
		var res *desim.RoundResult
		if rs.Shards > 1 {
			res, err = desim.RunFullRoundShardedTraced(rs.Env.Tree, f, rs.Env.Query, *rs.Env.Scenario.Filter, cfg, plan, rs.Shards, rs.Workers, nil)
		} else {
			res, err = desim.RunFullRoundFaults(rs.Env.Tree, f, rs.Env.Query, *rs.Env.Scenario.Filter, cfg, plan)
		}
		if err != nil {
			return nil, fmt.Errorf("sim: round %d faulted: %w", rs.round, err)
		}
		rd.Reports = res.Delivered
		rd.SinkValue = rs.Env.Network.Node(rs.Env.Tree.Root()).Value
		rd.Faulted = true
		rd.Crashed = res.Crashed
		return rd, nil
	}

	res, err := core.Run(rs.Env.Tree, f, rs.Env.Query, *rs.Env.Scenario.Filter)
	if err != nil {
		return nil, fmt.Errorf("sim: round %d: %w", rs.round, err)
	}
	rd.Reports = res.Reports
	rd.SinkValue = res.SinkValue
	return rd, nil
}
