// Package sim is the experiment harness of the reproduction: it
// materializes deployment scenarios, runs every protocol (Iso-Map and the
// four baselines) over them, and regenerates each table and figure of the
// paper's evaluation (Sec. 5) as a printable series.
package sim

import (
	"fmt"
	"math"

	"isomap/internal/baseline/escan"
	"isomap/internal/baseline/inlr"
	"isomap/internal/baseline/suppress"
	"isomap/internal/baseline/tinydb"
	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/energy"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// RasterRes is the resolution of the accuracy rasters (per side).
const RasterRes = 100

// Scenario describes one simulated deployment and query.
type Scenario struct {
	// Nodes is the deployed node count.
	Nodes int
	// FieldSide is the field edge length in normalized units (the paper's
	// reference field is 50, i.e. 400 m x 400 m).
	FieldSide float64
	// Radio is the radio range; zero selects the connectivity default
	// 1.5/sqrt(density), the paper's "no less than 1.5 at density 1".
	Radio float64
	// Grid selects grid deployment instead of uniform random.
	Grid bool
	// Seed drives deployment and failure randomness.
	Seed int64
	// FailFraction kills this fraction of nodes before the round.
	FailFraction float64
	// Levels is the queried isolevel scheme; zero value selects the
	// default {6, 8, 10, 12} of the evaluation.
	Levels field.Levels
	// Epsilon is the border tolerance; zero selects 0.05*Step.
	Epsilon float64
	// Filter is Iso-Map's in-network filter configuration; the zero value
	// selects the paper's default (s_a = 30 degrees, s_d = 4).
	Filter *core.FilterConfig
	// Regulate disables the sink regulation rules when false and a
	// RegulateSet is true.
	Regulate    bool
	RegulateSet bool
	// Trace overrides the synthetic seabed with an externally supplied
	// field (e.g. a depth trace loaded with field.ParseGrid). FieldSide
	// is then derived from the trace bounds.
	Trace field.Field
}

// withDefaults fills the zero-valued scenario fields.
func (s Scenario) withDefaults() Scenario {
	if s.Nodes == 0 {
		s.Nodes = 2500
	}
	if s.Trace != nil {
		x0, _, x1, _ := s.Trace.Bounds()
		s.FieldSide = x1 - x0
	}
	if s.FieldSide == 0 {
		s.FieldSide = 50
	}
	if s.Radio == 0 {
		density := float64(s.Nodes) / (s.FieldSide * s.FieldSide)
		s.Radio = 1.5 / math.Sqrt(density)
	}
	if s.Levels == (field.Levels{}) {
		s.Levels = field.Levels{Low: 6, High: 12, Step: 2}
	}
	if s.Epsilon == 0 {
		s.Epsilon = core.DefaultEpsilonFraction * s.Levels.Step
	}
	if s.Filter == nil {
		fc := core.DefaultFilterConfig()
		s.Filter = &fc
	}
	if !s.RegulateSet {
		s.Regulate = true
	}
	return s
}

// Env is a materialized scenario: the field surface, the deployed network
// and the routing tree.
type Env struct {
	Scenario Scenario
	Field    field.Field
	Network  *network.Network
	Tree     *routing.Tree
	Query    core.Query
}

// Build materializes the scenario. The synthetic seabed is scaled
// geometrically with the field side so larger deployments see a similar
// contour structure (constant region count, Theorem 4.1's assumption).
func Build(s Scenario) (*Env, error) {
	s = s.withDefaults()
	var f field.Field
	if s.Trace != nil {
		f = s.Trace
	} else {
		cfg := field.DefaultSeabedConfig()
		scale := s.FieldSide / cfg.Width
		cfg.Width, cfg.Height = s.FieldSide, s.FieldSide
		cfg.SigmaMin *= scale
		cfg.SigmaMax *= scale
		f = field.NewSeabed(cfg)
	}

	var (
		nw  *network.Network
		err error
	)
	if s.Grid {
		nw, err = network.DeployGrid(s.Nodes, f, s.Radio)
	} else {
		nw, err = network.DeployUniform(s.Nodes, f, s.Radio, s.Seed)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: deploy: %w", err)
	}
	if s.FailFraction > 0 {
		nw.FailFraction(s.FailFraction, s.Seed+1)
	}
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		return nil, fmt.Errorf("sim: sink: %w", err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		return nil, fmt.Errorf("sim: tree: %w", err)
	}
	q, err := core.NewQueryEpsilon(s.Levels, s.Epsilon)
	if err != nil {
		return nil, fmt.Errorf("sim: query: %w", err)
	}
	return &Env{Scenario: s, Field: f, Network: nw, Tree: tree, Query: q}, nil
}

// Stats summarizes one protocol round in the units the paper plots.
type Stats struct {
	Protocol  string  `json:"protocol"`
	Nodes     int     `json:"nodes"`
	Diameter  int     `json:"diameterHops"`
	AvgDegree float64 `json:"avgDegree"`
	// Generated and SinkReports count data reports.
	Generated   int64 `json:"generatedReports"`
	SinkReports int64 `json:"sinkReports"`
	// TrafficKB is total transmitted bytes / 1024 (Fig. 14).
	TrafficKB float64 `json:"trafficKB"`
	// MeanOps is the per-node computational intensity (Fig. 15).
	MeanOps float64 `json:"meanOpsPerNode"`
	// MeanEnergyJ is the per-node energy in joules (Fig. 16).
	MeanEnergyJ float64 `json:"meanEnergyJoules"`
	// Accuracy is the mapping accuracy against ground truth, or -1 when
	// the protocol does not reconstruct a map (Fig. 11).
	Accuracy float64 `json:"accuracy"`
	// MeanHausdorff averages the per-isolevel Hausdorff distances between
	// estimated and true isolines, or -1 when unavailable (Fig. 12).
	MeanHausdorff float64 `json:"meanHausdorff"`
}

func (e *Env) baseStats(name string, c *metrics.Counters) Stats {
	return Stats{
		Protocol:      name,
		Nodes:         e.Network.Len(),
		Diameter:      e.Tree.MaxLevel(),
		AvgDegree:     e.Network.AverageDegree(),
		Generated:     c.GeneratedReports,
		SinkReports:   c.SinkReports,
		TrafficKB:     c.TrafficKB(),
		MeanOps:       c.MeanOpsPerNode(),
		MeanEnergyJ:   energy.MeanNodeJoules(c),
		Accuracy:      -1,
		MeanHausdorff: -1,
	}
}

// truthRaster rasterizes the ground-truth contour map of the scenario.
func (e *Env) truthRaster() *field.Raster {
	return field.ClassifyRaster(e.Field, e.Scenario.Levels, RasterRes, RasterRes)
}

// RunIsoMap executes one Iso-Map round and reconstructs the map.
func (e *Env) RunIsoMap() (Stats, *contour.Map, error) {
	res, err := core.Run(e.Tree, e.Field, e.Query, *e.Scenario.Filter)
	if err != nil {
		return Stats{}, nil, err
	}
	opts := contour.Options{Regulate: e.Scenario.Regulate}
	m := contour.Reconstruct(res.Reports, e.Query.Levels, field.BoundsRect(e.Field), res.SinkValue, opts)
	st := e.baseStats("Iso-Map", res.Counters)
	st.Accuracy = field.Agreement(e.truthRaster(), m.Raster(RasterRes, RasterRes))
	st.MeanHausdorff = e.isoMapHausdorff(m)
	return st, m, nil
}

func (e *Env) isoMapHausdorff(m *contour.Map) float64 {
	var sum float64
	count := 0
	for i, lv := range e.Scenario.Levels.Values() {
		truth := field.IsolinePoints(e.Field, lv, 150, 150, 0.5)
		est := m.BoundaryPoints(i, 0.5)
		if len(truth) == 0 || len(est) == 0 {
			continue
		}
		if h := geom.HausdorffDistance(truth, est); h >= 0 {
			sum += h
			count++
		}
	}
	if count == 0 {
		return -1
	}
	return sum / float64(count)
}

// RunTinyDB executes one TinyDB round (requires a grid scenario).
func (e *Env) RunTinyDB() (Stats, *tinydb.Result, error) {
	res, err := tinydb.Run(e.Tree, e.Field)
	if err != nil {
		return Stats{}, nil, err
	}
	st := e.baseStats("TinyDB", res.Counters)
	st.Accuracy = field.Agreement(e.truthRaster(), res.Raster(e.Scenario.Levels, RasterRes, RasterRes))
	st.MeanHausdorff = e.tinyDBHausdorff(res)
	return st, res, nil
}

func (e *Env) tinyDBHausdorff(res *tinydb.Result) float64 {
	var sum float64
	count := 0
	for _, lv := range e.Scenario.Levels.Values() {
		truth := field.IsolinePoints(e.Field, lv, 150, 150, 0.5)
		est := res.IsolinePoints(lv, 0.5)
		if len(truth) == 0 || len(est) == 0 {
			continue
		}
		if h := geom.HausdorffDistance(truth, est); h >= 0 {
			sum += h
			count++
		}
	}
	if count == 0 {
		return -1
	}
	return sum / float64(count)
}

// nodeSpacing returns the mean node spacing of the scenario.
func (e *Env) nodeSpacing() float64 {
	return e.Scenario.FieldSide / math.Sqrt(float64(e.Scenario.Nodes))
}

// RunINLR executes one INLR round.
func (e *Env) RunINLR() (Stats, error) {
	res, err := inlr.Run(e.Tree, e.Field, inlr.DefaultConfig(e.Scenario.Levels.Step, e.nodeSpacing()))
	if err != nil {
		return Stats{}, err
	}
	return e.baseStats("INLR", res.Counters), nil
}

// RunEScan executes one eScan round.
func (e *Env) RunEScan() (Stats, error) {
	res, err := escan.Run(e.Tree, e.Field, escan.DefaultConfig(e.Scenario.Levels.Step, e.nodeSpacing()))
	if err != nil {
		return Stats{}, err
	}
	return e.baseStats("eScan", res.Counters), nil
}

// RunSuppress executes one data-suppression round.
func (e *Env) RunSuppress() (Stats, error) {
	res, err := suppress.Run(e.Tree, e.Field, suppress.DefaultConfig(e.Scenario.Levels.Step))
	if err != nil {
		return Stats{}, err
	}
	return e.baseStats("Suppression", res.Counters), nil
}
