// Package sim is the experiment harness of the reproduction: it
// materializes deployment scenarios, runs every protocol (Iso-Map and the
// four baselines) over them, and regenerates each table and figure of the
// paper's evaluation (Sec. 5) as a printable series.
//
// Sweeps execute on a Runner: a bounded worker pool that fans the
// independent (scenario, seed) cells of each figure out in parallel and
// aggregates results in deterministic order, backed by a deployment cache
// and a ground-truth memo so identical scenarios are materialized once.
package sim

import (
	"fmt"
	"math"

	"isomap/internal/baseline/escan"
	"isomap/internal/baseline/inlr"
	"isomap/internal/baseline/suppress"
	"isomap/internal/baseline/tinydb"
	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/energy"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// RasterRes is the resolution of the accuracy rasters (per side).
const RasterRes = 100

// truthIsolineRes is the marching-squares resolution (per side) of the
// ground-truth isolines the Hausdorff metrics sample.
const truthIsolineRes = 150

// Scenario describes one simulated deployment and query.
type Scenario struct {
	// Nodes is the deployed node count.
	Nodes int
	// FieldSide is the field edge length in normalized units (the paper's
	// reference field is 50, i.e. 400 m x 400 m).
	FieldSide float64
	// Radio is the radio range; zero selects the connectivity default
	// 1.5/sqrt(density), the paper's "no less than 1.5 at density 1". The
	// density is Nodes over the true field area (which differs from
	// FieldSide^2 for rectangular traces).
	Radio float64
	// Grid selects grid deployment instead of uniform random.
	Grid bool
	// Seed drives deployment and failure randomness.
	Seed int64
	// FailFraction kills this fraction of nodes before the round.
	FailFraction float64
	// Levels is the queried isolevel scheme; zero value selects the
	// default {6, 8, 10, 12} of the evaluation.
	Levels field.Levels
	// Epsilon is the border tolerance; zero selects 0.05*Step unless
	// EpsilonSet is true.
	Epsilon float64
	// EpsilonSet marks Epsilon as explicit, so an intentional zero is
	// honored (and rejected by query validation) instead of silently
	// selecting the default — mirroring Regulate/RegulateSet.
	EpsilonSet bool
	// Filter is Iso-Map's in-network filter configuration; the zero value
	// selects the paper's default (s_a = 30 degrees, s_d = 4). An explicit
	// &core.FilterConfig{Enabled: false} disables filtering.
	Filter *core.FilterConfig
	// Regulate disables the sink regulation rules when false and a
	// RegulateSet is true.
	Regulate    bool
	RegulateSet bool
	// Trace overrides the synthetic seabed with an externally supplied
	// field (e.g. a depth trace loaded with field.ParseGrid). FieldSide
	// is then derived from the trace's x extent, while density-derived
	// defaults use the trace's true bounds area.
	Trace field.Field
}

// withDefaults fills the zero-valued scenario fields.
func (s Scenario) withDefaults() Scenario {
	if s.Nodes == 0 {
		s.Nodes = 2500
	}
	area := 0.0
	if s.Trace != nil {
		x0, y0, x1, y1 := s.Trace.Bounds()
		s.FieldSide = x1 - x0
		// Rectangular traces have area != FieldSide^2; density-derived
		// defaults must use the true extent.
		area = (x1 - x0) * (y1 - y0)
	}
	if s.FieldSide == 0 {
		s.FieldSide = 50
	}
	if area == 0 {
		area = s.FieldSide * s.FieldSide
	}
	if s.Radio == 0 {
		density := float64(s.Nodes) / area
		s.Radio = 1.5 / math.Sqrt(density)
	}
	if s.Levels == (field.Levels{}) {
		s.Levels = field.Levels{Low: 6, High: 12, Step: 2}
	}
	if s.Epsilon == 0 && !s.EpsilonSet {
		s.Epsilon = core.DefaultEpsilonFraction * s.Levels.Step
	}
	if s.Filter == nil {
		fc := core.DefaultFilterConfig()
		s.Filter = &fc
	}
	if !s.RegulateSet {
		s.Regulate = true
	}
	return s
}

// Env is a materialized scenario: the field surface, the deployed network
// and the routing tree.
//
// Reuse contract: an Env may be reused across protocol runs in any order —
// every Run* method re-senses the field into the network before running,
// and nothing a protocol round does survives it except node values, so
// run results are independent of what ran before on the same Env.
// Protocol runs on the SAME Env must not overlap in time (they share the
// network's node values); for concurrent rounds, build one Env per
// goroutine — Runner.Build hands out isolated clones of one cached
// deployment for exactly this purpose.
type Env struct {
	Scenario Scenario
	Field    field.Field
	Network  *network.Network
	Tree     *routing.Tree
	Query    core.Query

	// memo, when set, caches ground-truth rasters and isoline samplings
	// shared with every other Env holding the same field instance.
	memo *field.Memo

	// rasterWorkers bounds the estimated-map rasterizer's worker pool. A
	// Runner with a multi-worker pool sets it to 1: the sweep jobs already
	// saturate the cores, so nested raster parallelism would only add
	// scheduling overhead. 0 lets the raster pick GOMAXPROCS. The raster
	// output is byte-identical at any width.
	rasterWorkers int
}

// seabedConfigFor returns the synthetic-surface config of a defaulted
// scenario: the reference seabed scaled geometrically with the field side
// so larger deployments see a similar contour structure (constant region
// count, Theorem 4.1's assumption).
func seabedConfigFor(s Scenario) field.SeabedConfig {
	cfg := field.DefaultSeabedConfig()
	scale := s.FieldSide / cfg.Width
	cfg.Width, cfg.Height = s.FieldSide, s.FieldSide
	cfg.SigmaMin *= scale
	cfg.SigmaMax *= scale
	return cfg
}

// Build materializes the scenario through the shared default Runner, so
// repeated builds of the same deployment reuse its cached field, node
// placement and routing tree (each call still returns an isolated Env).
func Build(s Scenario) (*Env, error) {
	return defaultRunner().Build(s)
}

// deploy materializes the network and routing tree of a defaulted
// scenario over the field.
func deploy(s Scenario, f field.Field) (*network.Network, *routing.Tree, error) {
	var (
		nw  *network.Network
		err error
	)
	if s.Grid {
		nw, err = network.DeployGrid(s.Nodes, f, s.Radio)
	} else {
		nw, err = network.DeployUniform(s.Nodes, f, s.Radio, s.Seed)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("sim: deploy: %w", err)
	}
	if s.FailFraction > 0 {
		nw.FailFraction(s.FailFraction, s.Seed+1)
	}
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		return nil, nil, fmt.Errorf("sim: sink: %w", err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: tree: %w", err)
	}
	return nw, tree, nil
}

// buildEnv materializes a defaulted scenario directly (no deployment
// cache) over the given field.
func buildEnv(s Scenario, f field.Field, memo *field.Memo) (*Env, error) {
	nw, tree, err := deploy(s, f)
	if err != nil {
		return nil, err
	}
	q, err := core.NewQueryEpsilon(s.Levels, s.Epsilon)
	if err != nil {
		return nil, fmt.Errorf("sim: query: %w", err)
	}
	return &Env{Scenario: s, Field: f, Network: nw, Tree: tree, Query: q, memo: memo}, nil
}

// Stats summarizes one protocol round in the units the paper plots.
type Stats struct {
	Protocol  string  `json:"protocol"`
	Nodes     int     `json:"nodes"`
	Diameter  int     `json:"diameterHops"`
	AvgDegree float64 `json:"avgDegree"`
	// Generated and SinkReports count data reports.
	Generated   int64 `json:"generatedReports"`
	SinkReports int64 `json:"sinkReports"`
	// TrafficKB is total transmitted bytes / 1024 (Fig. 14).
	TrafficKB float64 `json:"trafficKB"`
	// MeanOps is the per-node computational intensity (Fig. 15).
	MeanOps float64 `json:"meanOpsPerNode"`
	// MeanEnergyJ is the per-node energy in joules (Fig. 16).
	MeanEnergyJ float64 `json:"meanEnergyJoules"`
	// Accuracy is the mapping accuracy against ground truth, or -1 when
	// the protocol does not reconstruct a map (Fig. 11).
	Accuracy float64 `json:"accuracy"`
	// MeanHausdorff averages the per-isolevel Hausdorff distances between
	// estimated and true isolines, or -1 when unavailable (Fig. 12).
	MeanHausdorff float64 `json:"meanHausdorff"`
}

func (e *Env) baseStats(name string, c *metrics.Counters) Stats {
	return Stats{
		Protocol:      name,
		Nodes:         e.Network.Len(),
		Diameter:      e.Tree.MaxLevel(),
		AvgDegree:     e.Network.AverageDegree(),
		Generated:     c.GeneratedReports,
		SinkReports:   c.SinkReports,
		TrafficKB:     c.TrafficKB(),
		MeanOps:       c.MeanOpsPerNode(),
		MeanEnergyJ:   energy.MeanNodeJoules(c),
		Accuracy:      -1,
		MeanHausdorff: -1,
	}
}

// estRaster rasterizes an estimated contour map at the accuracy
// resolution on the Env's raster worker budget (see rasterWorkers).
func (e *Env) estRaster(m *contour.Map) *field.Raster {
	return m.RasterWorkers(RasterRes, RasterRes, e.rasterWorkers)
}

// truthRaster rasterizes the ground-truth contour map of the scenario,
// through the runner's truth memo when available. The result is shared:
// callers must not modify it.
func (e *Env) truthRaster() *field.Raster {
	return e.memo.ClassifyRaster(e.Field, e.Scenario.Levels, RasterRes, RasterRes)
}

// truthIsoline samples the ground-truth isoline at the given level,
// through the runner's truth memo when available. The result is shared:
// callers must not modify it.
func (e *Env) truthIsoline(level float64) []geom.Point {
	return e.memo.IsolinePoints(e.Field, level, truthIsolineRes, truthIsolineRes, 0.5)
}

// RunIsoMap executes one Iso-Map round and reconstructs the map.
func (e *Env) RunIsoMap() (Stats, *contour.Map, error) {
	res, err := core.Run(e.Tree, e.Field, e.Query, *e.Scenario.Filter)
	if err != nil {
		return Stats{}, nil, err
	}
	opts := contour.Options{Regulate: e.Scenario.Regulate}
	m := contour.Reconstruct(res.Reports, e.Query.Levels, field.BoundsRect(e.Field), res.SinkValue, opts)
	st := e.baseStats("Iso-Map", res.Counters)
	st.Accuracy = field.Agreement(e.truthRaster(), e.estRaster(m))
	st.MeanHausdorff = e.isoMapHausdorff(m)
	return st, m, nil
}

func (e *Env) isoMapHausdorff(m *contour.Map) float64 {
	var sum float64
	count := 0
	for i, lv := range e.Scenario.Levels.Values() {
		truth := e.truthIsoline(lv)
		est := m.BoundaryPoints(i, 0.5)
		if len(truth) == 0 || len(est) == 0 {
			continue
		}
		if h := geom.HausdorffDistance(truth, est); h >= 0 {
			sum += h
			count++
		}
	}
	if count == 0 {
		return -1
	}
	return sum / float64(count)
}

// RunTinyDB executes one TinyDB round (requires a grid scenario).
func (e *Env) RunTinyDB() (Stats, *tinydb.Result, error) {
	res, err := tinydb.Run(e.Tree, e.Field)
	if err != nil {
		return Stats{}, nil, err
	}
	st := e.baseStats("TinyDB", res.Counters)
	st.Accuracy = field.Agreement(e.truthRaster(), res.Raster(e.Scenario.Levels, RasterRes, RasterRes))
	st.MeanHausdorff = e.tinyDBHausdorff(res)
	return st, res, nil
}

func (e *Env) tinyDBHausdorff(res *tinydb.Result) float64 {
	var sum float64
	count := 0
	for _, lv := range e.Scenario.Levels.Values() {
		truth := e.truthIsoline(lv)
		est := res.IsolinePoints(lv, 0.5)
		if len(truth) == 0 || len(est) == 0 {
			continue
		}
		if h := geom.HausdorffDistance(truth, est); h >= 0 {
			sum += h
			count++
		}
	}
	if count == 0 {
		return -1
	}
	return sum / float64(count)
}

// nodeSpacing returns the mean node spacing of the scenario, derived from
// the true field area so rectangular traces get the right spacing.
func (e *Env) nodeSpacing() float64 {
	x0, y0, x1, y1 := e.Field.Bounds()
	return math.Sqrt((x1 - x0) * (y1 - y0) / float64(e.Scenario.Nodes))
}

// RunINLR executes one INLR round.
func (e *Env) RunINLR() (Stats, error) {
	res, err := inlr.Run(e.Tree, e.Field, inlr.DefaultConfig(e.Scenario.Levels.Step, e.nodeSpacing()))
	if err != nil {
		return Stats{}, err
	}
	return e.baseStats("INLR", res.Counters), nil
}

// RunEScan executes one eScan round.
func (e *Env) RunEScan() (Stats, error) {
	res, err := escan.Run(e.Tree, e.Field, escan.DefaultConfig(e.Scenario.Levels.Step, e.nodeSpacing()))
	if err != nil {
		return Stats{}, err
	}
	return e.baseStats("eScan", res.Counters), nil
}

// RunSuppress executes one data-suppression round.
func (e *Env) RunSuppress() (Stats, error) {
	res, err := suppress.Run(e.Tree, e.Field, suppress.DefaultConfig(e.Scenario.Levels.Step))
	if err != nil {
		return Stats{}, err
	}
	return e.baseStats("Suppression", res.Counters), nil
}
