package sim

import (
	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/field"
)

// ExtDetectPolicySweep compares the paper's Definition 3.1 detection (the
// epsilon border band) against the edge-based policy of the isoline-
// aggregation lineage across densities: generated reports, sink reports
// and mapping accuracy.
func ExtDetectPolicySweep(runs int) (*Table, error) {
	return defaultRunner().ExtDetectPolicySweep(runs)
}

// ExtDetectPolicySweep is the Runner form of the package-level function.
func (r *Runner) ExtDetectPolicySweep(runs int) (*Table, error) {
	t := &Table{
		ID:    "ext-detect",
		Title: "Detection policy: Def. 3.1 (eps band) vs edge-based election",
		Columns: []string{
			"density", "gen (3.1)", "sink (3.1)", "acc (3.1)",
			"gen (edge)", "sink (edge)", "acc (edge)",
		},
	}
	densities := []float64{0.16, 0.36, 1, 4}
	rows, err := sweepAverage(r, len(densities), runs, func(p int, seed int64) ([]float64, error) {
		return r.detectPolicyRow(nodesAtDensity(densities[p]), seed)
	})
	if err != nil {
		return nil, err
	}
	for p, d := range densities {
		t.AddRow(d, rows[p][0], rows[p][1], rows[p][2], rows[p][3], rows[p][4], rows[p][5])
	}
	return t, nil
}

func (r *Runner) detectPolicyRow(n int, seed int64) ([]float64, error) {
	env, err := r.Build(Scenario{Nodes: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	env.Network.Sense(env.Field)
	truth := env.truthRaster()

	evaluate := func(detect func() []core.Report) (gen, sink, acc float64) {
		generated := detect()
		routableReports := routable(env, generated)
		delivered := core.DeliverReports(env.Tree, routableReports, *env.Scenario.Filter, nil)
		sinkValue := env.Network.Node(env.Tree.Root()).Value
		m := contour.Reconstruct(delivered, env.Query.Levels,
			field.BoundsRect(env.Field), sinkValue, contour.DefaultOptions())
		return float64(len(generated)), float64(len(delivered)),
			field.Agreement(truth, env.estRaster(m))
	}

	g1, s1, a1 := evaluate(func() []core.Report {
		return core.DetectIsolineNodes(env.Network, env.Query, nil)
	})
	g2, s2, a2 := evaluate(func() []core.Report {
		return core.DetectIsolineNodesEdgeBased(env.Network, env.Query, nil)
	})
	return []float64{g1, s1, a1, g2, s2, a2}, nil
}
