package sim

import (
	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/field"
)

// ExtDetectPolicySweep compares the paper's Definition 3.1 detection (the
// epsilon border band) against the edge-based policy of the isoline-
// aggregation lineage across densities: generated reports, sink reports
// and mapping accuracy.
func ExtDetectPolicySweep(runs int) (*Table, error) {
	t := &Table{
		ID:    "ext-detect",
		Title: "Detection policy: Def. 3.1 (eps band) vs edge-based election",
		Columns: []string{
			"density", "gen (3.1)", "sink (3.1)", "acc (3.1)",
			"gen (edge)", "sink (edge)", "acc (edge)",
		},
	}
	for _, d := range []float64{0.16, 0.36, 1, 4} {
		n := nodesAtDensity(d)
		vals, err := averageOver(runs, func(seed int64) ([]float64, error) {
			return detectPolicyRow(n, seed)
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(d, vals[0], vals[1], vals[2], vals[3], vals[4], vals[5])
	}
	return t, nil
}

func detectPolicyRow(n int, seed int64) ([]float64, error) {
	env, err := Build(Scenario{Nodes: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	env.Network.Sense(env.Field)
	truth := env.truthRaster()

	evaluate := func(detect func() []core.Report) (gen, sink, acc float64) {
		generated := detect()
		routableReports := routable(env, generated)
		delivered := core.DeliverReports(env.Tree, routableReports, *env.Scenario.Filter, nil)
		sinkValue := env.Network.Node(env.Tree.Root()).Value
		m := contour.Reconstruct(delivered, env.Query.Levels,
			field.BoundsRect(env.Field), sinkValue, contour.DefaultOptions())
		return float64(len(generated)), float64(len(delivered)),
			field.Agreement(truth, m.Raster(RasterRes, RasterRes))
	}

	g1, s1, a1 := evaluate(func() []core.Report {
		return core.DetectIsolineNodes(env.Network, env.Query, nil)
	})
	g2, s2, a2 := evaluate(func() []core.Report {
		return core.DetectIsolineNodesEdgeBased(env.Network, env.Query, nil)
	})
	return []float64{g1, s1, a1, g2, s2, a2}, nil
}
