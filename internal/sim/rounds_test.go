package sim

import (
	"reflect"
	"sync"
	"testing"

	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/field"
)

func roundScenario(seed int64) Scenario {
	return Scenario{Nodes: 500, FieldSide: 50, Seed: seed}
}

func newRoundSource(t *testing.T, r *Runner, seed int64, faultEvery int) *RoundSource {
	t.Helper()
	env, err := r.Build(roundScenario(seed))
	if err != nil {
		t.Fatal(err)
	}
	return &RoundSource{Env: env, FaultEvery: faultEvery}
}

// TestRoundSourceDeterministic: two sources over same-seed deployments
// must emit byte-identical round streams, faulted rounds included.
func TestRoundSourceDeterministic(t *testing.T) {
	r := NewRunner(1)
	a := newRoundSource(t, r, 3, 3)
	b := newRoundSource(t, r, 3, 3)
	sawFault := false
	for round := 0; round < 6; round++ {
		ra, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("round %d diverged between same-seed sources (faulted=%v)", round+1, ra.Faulted)
		}
		if ra.Faulted {
			sawFault = true
			if ra.Crashed == 0 {
				t.Errorf("faulted round %d crashed no nodes", ra.Round)
			}
		}
		if len(ra.Reports) == 0 {
			t.Fatalf("round %d delivered nothing", ra.Round)
		}
	}
	if !sawFault {
		t.Fatal("FaultEvery=3 produced no faulted round in 6")
	}
}

// TestRoundSourceShardedDeterministic: a source running its faulted
// rounds on a sharded engine must emit the exact stream a sequential
// source emits — same seed, same churn, every-Nth faulted rounds
// included. Sharding is an execution strategy, not a model change.
func TestRoundSourceShardedDeterministic(t *testing.T) {
	r := NewRunner(1)
	seq := newRoundSource(t, r, 3, 2)
	for _, shards := range []int{4, 9} {
		shardedSrc := newRoundSource(t, r, 3, 2)
		shardedSrc.Shards = shards
		shardedSrc.Workers = 4
		seq.round = 0 // replay the same rounds
		sawFault := false
		for round := 0; round < 4; round++ {
			ra, err := seq.Next()
			if err != nil {
				t.Fatal(err)
			}
			rb, err := shardedSrc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("shards=%d: round %d diverged from sequential (faulted=%v)",
					shards, ra.Round, ra.Faulted)
			}
			if ra.Faulted {
				sawFault = true
				if ra.Crashed == 0 {
					t.Errorf("faulted round %d crashed no nodes", ra.Round)
				}
			}
		}
		if !sawFault {
			t.Fatalf("shards=%d: no faulted round exercised", shards)
		}
	}
}

// TestRoundSourceSeek pins the checkpoint-restore lemma: a freshly built
// same-seed source seeked to round n emits the exact rounds a
// continuously advanced source emits from n+1 on — faulted rounds (fresh
// per-round plans, crash restore) included. Rounds are memoryless given
// the Env, so the round counter is the source's entire resumable state.
func TestRoundSourceSeek(t *testing.T) {
	r := NewRunner(1)
	cont := newRoundSource(t, r, 5, 2)
	var stream []*RoundData
	for round := 0; round < 6; round++ {
		rd, err := cont.Next()
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, rd)
	}
	for _, seek := range []int{0, 2, 3, 5} {
		re := newRoundSource(t, r, 5, 2)
		if err := re.SeekRound(seek); err != nil {
			t.Fatal(err)
		}
		if re.Round() != seek {
			t.Fatalf("Round() after SeekRound(%d) = %d", seek, re.Round())
		}
		for i := seek; i < len(stream); i++ {
			rd, err := re.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rd, stream[i]) {
				t.Fatalf("seek %d: round %d diverged from continuous stream (faulted=%v)",
					seek, stream[i].Round, stream[i].Faulted)
			}
		}
	}
	if err := (&RoundSource{}).SeekRound(-1); err == nil {
		t.Fatal("SeekRound(-1) accepted")
	}
}

// TestConcurrentClonesSameSeedDeterminism pins the Network.Clone sharing
// contract under the race detector: many goroutines running interleaved
// rounds (fault-free and crash-faulted) on clones of one cached
// deployment must all produce the same report stream. Shared-structure
// mutation — or crash-induced Failed marks leaking past a round — breaks
// this.
func TestConcurrentClonesSameSeedDeterminism(t *testing.T) {
	r := NewRunner(1)
	const workers, rounds = 4, 5
	streams := make([][][]core.Report, workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := &RoundSource{}
			env, err := r.Build(roundScenario(9))
			if err != nil {
				errs[w] = err
				return
			}
			src.Env = env
			src.FaultEvery = 2
			for round := 0; round < rounds; round++ {
				rd, err := src.Next()
				if err != nil {
					errs[w] = err
					return
				}
				streams[w] = append(streams[w], rd.Reports)
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(streams[0], streams[w]) {
			t.Fatalf("worker %d's round stream diverged from worker 0's", w)
		}
	}
}

// TestRoundSourceFeedsIncremental: the serving pipeline end to end at the
// engine level — churn rounds (including a crash-faulted one) streamed
// into contour.Incremental must stay byte-identical to the full-rebuild
// oracle over the engine's arranged report order.
func TestRoundSourceFeedsIncremental(t *testing.T) {
	r := NewRunner(1)
	src := newRoundSource(t, r, 7, 3)
	env := src.Env
	inc := contour.NewIncremental(env.Scenario.Levels, field.BoundsRect(env.Field), contour.DefaultOptions())
	sawFault := false
	for round := 0; round < 4; round++ {
		rd, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		sawFault = sawFault || rd.Faulted
		m := inc.Update(rd.Reports, rd.SinkValue)
		full := contour.Reconstruct(inc.Arranged(), env.Scenario.Levels, field.BoundsRect(env.Field), rd.SinkValue, contour.DefaultOptions())
		if err := contour.Equivalent(m, full, 64, 64); err != nil {
			t.Fatalf("round %d (faulted=%v): %v", rd.Round, rd.Faulted, err)
		}
		if err := contour.EquivalentRaster(inc.Raster(64, 64), full.RasterWorkers(64, 64, 1)); err != nil {
			t.Fatalf("round %d (faulted=%v) raster: %v", rd.Round, rd.Faulted, err)
		}
	}
	if !sawFault {
		t.Fatal("no faulted round reached the engine")
	}
	if inc.Stats().CellsReused == 0 {
		t.Error("protocol churn reused no Voronoi cells")
	}
}
