package sim

import (
	"fmt"

	"isomap/internal/field"
)

// TemporalPoint is one cell of the temporal-monitoring sweep grid: a
// seeded evolving field (see field.NewTemporal), its evolution speed,
// and the reporting protocol tracking it — full-report packet rounds, or
// the delta protocol with a given sink-side expiry.
type TemporalPoint struct {
	Field string  `json:"field"`
	Speed float64 `json:"speed"`
	Delta bool    `json:"delta"`
	// Expiry is the delta sink's staleness bound in rounds (0 disables
	// aging); ignored for full-report cells.
	Expiry int `json:"expiryRounds,omitempty"`
}

// TemporalRounds is the monitoring horizon of every sweep cell: long
// enough for the delta protocol's suppression to dominate its first-round
// full cost, short enough to keep the grid cheap.
const TemporalRounds = 10

// DefaultTemporalPoints is the sweep grid of ext-temporal: a field-speed
// ramp on the drifting-bumps field with full-report and delta cells
// paired at each speed (the traffic-vs-staleness-vs-speed curves), an
// unaged delta cell, and one cell each on the advected-front and
// step-event fields.
func DefaultTemporalPoints() []TemporalPoint {
	return []TemporalPoint{
		{Field: "drift", Speed: 0.2},
		{Field: "drift", Speed: 0.2, Delta: true, Expiry: 8},
		{Field: "drift", Speed: 0.5},
		{Field: "drift", Speed: 0.5, Delta: true, Expiry: 8},
		{Field: "drift", Speed: 1.0},
		{Field: "drift", Speed: 1.0, Delta: true, Expiry: 8},
		{Field: "drift", Speed: 0.5, Delta: true},
		{Field: "front", Speed: 0.5},
		{Field: "front", Speed: 0.5, Delta: true, Expiry: 8},
		{Field: "step", Speed: 0.5, Delta: true, Expiry: 6},
	}
}

// SmokeTemporalPoints is the single-cell grid the CI smoke step runs:
// one aged delta cell on the drifting field.
func SmokeTemporalPoints() []TemporalPoint {
	return []TemporalPoint{{Field: "drift", Speed: 0.5, Delta: true, Expiry: 4}}
}

// TemporalPointResult is the averaged outcome of one sweep cell, in
// machine-readable form for BENCH_TEMPORAL.json. Per-round metrics
// average over the cell's TemporalRounds monitoring horizon first, then
// over seeds. Metrics averaging to -1 were not applicable in any run
// (staleness and suppression outside delta mode).
type TemporalPointResult struct {
	TemporalPoint
	// DataFramesPerRound is the mean number of data frames first-sent per
	// round — the traffic axis the delta protocol is built to shrink.
	DataFramesPerRound float64 `json:"dataFramesPerRound"`
	// TxBytesPerRound is the mean physical bytes transmitted per round
	// (retries and acks included).
	TxBytesPerRound float64 `json:"txBytesPerRound"`
	// TrackingError is the mean over rounds of 1 - raster agreement
	// between the sink's reconstructed map and the evolving field's
	// ground truth at that round's time.
	TrackingError float64 `json:"trackingError"`
	// MeanStaleness is the sink belief's mean entry age in rounds,
	// averaged over rounds (delta cells only).
	MeanStaleness float64 `json:"meanStalenessRounds"`
	// MapReports is the mean report count feeding reconstruction: the
	// delivered batch in full mode, the aged belief in delta mode.
	MapReports float64 `json:"mapReports"`
	// SuppressRatio is the fraction of locally refreshed isoline
	// observations the delta protocol withheld as unchanged (delta cells
	// only).
	SuppressRatio float64 `json:"suppressRatio"`
}

// temporalMetricCount aligns the cell metric vector with the
// TemporalPointResult fields.
const temporalMetricCount = 6

// temporalCell monitors one (point, seed) deployment for TemporalRounds
// rounds and scores traffic against tracking accuracy. Each round's
// truth is the evolving field's own classification at the round's time —
// tracking error, unlike the static sweeps' accuracy, charges staleness
// as well as mapping error.
func (r *Runner) temporalCell(p TemporalPoint, seed int64) ([]float64, error) {
	env, err := r.Build(faultSweepScenario(seed))
	if err != nil {
		return nil, err
	}
	dyn, err := field.NewTemporal(p.Field, env.Field, p.Speed, seed)
	if err != nil {
		return nil, fmt.Errorf("sim: temporal cell %q: %w", p.Field, err)
	}
	rs := &RoundSource{
		Env: env, Dyn: dyn,
		Delta: p.Delta, DeltaExpiry: p.Expiry,
		PacketRounds: !p.Delta,
	}
	var frames, txBytes, trackErr, stale, mapReports float64
	var crossings, suppressed int
	for round := 0; round < TemporalRounds; round++ {
		rd, err := rs.Next()
		if err != nil {
			return nil, err
		}
		truth := field.ClassifyRaster(dyn.At(rd.T), env.Scenario.Levels, RasterRes, RasterRes)
		est := env.estRaster(faultMap(env, rd.Reports))
		trackErr += 1 - field.Agreement(truth, est)
		frames += float64(rd.DataFrames)
		txBytes += float64(rd.TxBytes)
		mapReports += float64(len(rd.Reports))
		if rd.Delta != nil {
			stale += rd.Delta.MeanAgeRounds
			crossings += rd.Delta.Crossings
			suppressed += rd.Delta.Suppressed
		}
	}
	n := float64(TemporalRounds)
	staleness, suppressRatio := -1.0, -1.0
	if p.Delta {
		staleness = stale / n
		if total := crossings + suppressed; total > 0 {
			suppressRatio = float64(suppressed) / float64(total)
		}
	}
	return []float64{
		frames / n,
		txBytes / n,
		trackErr / n,
		staleness,
		mapReports / n,
		suppressRatio,
	}, nil
}

// ExtTemporalSweepResults runs the temporal-monitoring sweep over the
// given grid, averaging each point over runs seeds, and returns the
// machine-readable results. All (point, seed) cells fan out over the
// runner's pool, so the output is byte-identical at any -parallel width.
func ExtTemporalSweepResults(runs int, points []TemporalPoint) ([]TemporalPointResult, error) {
	return defaultRunner().ExtTemporalSweepResults(runs, points)
}

// ExtTemporalSweepResults is the Runner form of the package-level
// function.
func (r *Runner) ExtTemporalSweepResults(runs int, points []TemporalPoint) ([]TemporalPointResult, error) {
	if runs < 1 {
		runs = 1
	}
	avgs, err := sweepAverage(r, len(points), runs, func(point int, seed int64) ([]float64, error) {
		return r.temporalCell(points[point], seed)
	})
	if err != nil {
		return nil, err
	}
	out := make([]TemporalPointResult, len(points))
	for i, v := range avgs {
		if len(v) != temporalMetricCount {
			continue // point failed in every run; keep zero metrics
		}
		out[i] = TemporalPointResult{
			TemporalPoint:      points[i],
			DataFramesPerRound: v[0],
			TxBytesPerRound:    v[1],
			TrackingError:      v[2],
			MeanStaleness:      v[3],
			MapReports:         v[4],
			SuppressRatio:      v[5],
		}
	}
	return out, nil
}

// ExtTemporalSweep tracks seeded evolving fields through multi-round
// monitoring — full-report packet rounds against the delta-report
// protocol — and reports per-round traffic, tracking error against the
// moving ground truth, and sink-side staleness across field speeds.
func ExtTemporalSweep(runs int) (*Table, error) { return defaultRunner().ExtTemporalSweep(runs) }

// ExtTemporalSweep is the Runner form of the package-level function.
func (r *Runner) ExtTemporalSweep(runs int) (*Table, error) {
	results, err := r.ExtTemporalSweepResults(runs, DefaultTemporalPoints())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-temporal",
		Title: "Temporal monitoring: traffic vs tracking error vs field speed (full-report vs delta, packet level)",
		Columns: []string{
			"field", "speed", "mode", "expiry", "frames/round", "txB/round",
			"trackErr", "staleness", "map reports", "suppress",
		},
	}
	for _, res := range results {
		mode := "full"
		if res.Delta {
			mode = "delta"
		}
		t.AddRow(res.Field, res.Speed, mode, res.Expiry,
			res.DataFramesPerRound, res.TxBytesPerRound, res.TrackingError,
			res.MeanStaleness, res.MapReports, res.SuppressRatio)
	}
	return t, nil
}
