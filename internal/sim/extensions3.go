package sim

import (
	"strconv"

	"isomap/internal/core"
	"isomap/internal/desim"
	"isomap/internal/metrics"
)

// ExtMACSweep runs Iso-Map's report collection on the packet-level
// CSMA/CA engine and contrasts it with the structural (perfect-link)
// model: completion time, collision counts, and the physical byte overhead
// of acknowledgements and retransmissions.
func ExtMACSweep() (*Table, error) { return defaultRunner().ExtMACSweep() }

// ExtMACSweep is the Runner form of the package-level function.
func (r *Runner) ExtMACSweep() (*Table, error) {
	t := &Table{
		ID:    "ext-mac",
		Title: "Packet-level CSMA/CA collection vs structural model (Iso-Map)",
		Columns: []string{
			"nodes", "filter", "delivered/structural", "completion (s)",
			"collisions", "phys bytes / struct bytes",
		},
	}
	type cell struct {
		n        int
		filtered bool
	}
	var cells []cell
	for _, n := range []int{400, 2500} {
		for _, filtered := range []bool{true, false} {
			cells = append(cells, cell{n, filtered})
		}
	}
	rows, err := runJobs(r, len(cells), func(i int) ([]any, error) {
		n, filtered := cells[i].n, cells[i].filtered
		env, err := r.Build(Scenario{Nodes: n, FieldSide: sideForNodes(n), Seed: 1})
		if err != nil {
			return nil, err
		}
		env.Network.Sense(env.Field)
		generated := core.DetectIsolineNodes(env.Network, env.Query, nil)
		routableReports := routable(env, generated)
		fc := core.FilterConfig{Enabled: false}
		label := "off"
		if filtered {
			fc = core.DefaultFilterConfig()
			label = "on"
		}
		sc := metrics.NewCounters(env.Network.Len())
		structural := core.DeliverReports(env.Tree, routableReports, fc, sc)
		structuralBytes := sc.TotalTxBytes()

		res, err := desim.CollectReports(env.Tree, routableReports, fc, desim.DefaultRadioConfig())
		if err != nil {
			return nil, err
		}
		ratio := float64(res.Counters.TotalTxBytes()) / float64(max(structuralBytes, 1))
		return []any{n, label,
			intPair(len(res.Delivered), len(structural)),
			res.CompletionSeconds,
			res.Radio.Collisions,
			ratio}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

// sideForNodes returns the field side giving density 1.
func sideForNodes(n int) float64 {
	switch n {
	case 400:
		return 20
	case 2500:
		return 50
	default:
		return 50
	}
}

func intPair(a, b int) string {
	return strconv.Itoa(a) + "/" + strconv.Itoa(b)
}
