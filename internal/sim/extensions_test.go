package sim

import "testing"

func TestExtNoiseSweepDegradesGracefully(t *testing.T) {
	tb, err := ExtNoiseSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	accClean := parse(t, tb.Rows[0][3])
	accNoisy := parse(t, tb.Rows[len(tb.Rows)-1][3])
	if accClean < 0.85 {
		t.Errorf("clean accuracy = %v", accClean)
	}
	if accNoisy >= accClean {
		t.Errorf("heavy noise did not reduce accuracy: %v vs %v", accNoisy, accClean)
	}
	// Noise inflates the isoline-node population: more nodes' readings
	// wander into the border region.
	genClean := parse(t, tb.Rows[0][1])
	genNoisy := parse(t, tb.Rows[len(tb.Rows)-1][1])
	if genNoisy <= genClean {
		t.Errorf("noise did not inflate generated reports: %v vs %v", genNoisy, genClean)
	}
}

func TestExtScopeSweepTradesTrafficForPrecision(t *testing.T) {
	tb, err := ExtScopeSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Wider scope costs more traffic.
	if parse(t, tb.Rows[2][3]) <= parse(t, tb.Rows[0][3]) {
		t.Errorf("3-hop traffic %v not above 1-hop %v", tb.Rows[2][3], tb.Rows[0][3])
	}
	// Gradient error stays bounded at every scope.
	for _, row := range tb.Rows {
		if e := parse(t, row[1]); e > 25 {
			t.Errorf("scope %s: gradient error %v too high", row[0], e)
		}
	}
}

func TestExtLossSweepMonotone(t *testing.T) {
	tb, err := ExtLossSweep()
	if err != nil {
		t.Fatal(err)
	}
	var prevIso float64
	for i, row := range tb.Rows {
		iso := parse(t, row[3])
		if i > 0 && iso <= prevIso {
			t.Errorf("row %d: energy did not grow with loss: %v <= %v", i, iso, prevIso)
		}
		prevIso = iso
		// Iso-Map stays the cheapest at every loss rate.
		if iso >= parse(t, row[1]) || iso >= parse(t, row[2]) {
			t.Errorf("row %d: Iso-Map %v not cheapest", i, iso)
		}
	}
}

func TestExtMonitorRoundsTemporalSaves(t *testing.T) {
	tb, err := ExtMonitorRounds(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// After round 0 the temporal session delivers (and transmits) less
	// than the plain one.
	var tempSum, plainSum float64
	for _, row := range tb.Rows[1:] {
		tempSum += parse(t, row[2])
		plainSum += parse(t, row[4])
	}
	if tempSum >= plainSum {
		t.Errorf("temporal traffic %v not below plain %v", tempSum, plainSum)
	}
}
