package sim

import "testing"

func TestExtLifetimeSweep(t *testing.T) {
	tb, err := ExtLifetimeSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	tdbRow, isoRow := tb.Rows[0], tb.Rows[1]
	if tdbRow[0] != "TinyDB" || isoRow[0] != "Iso-Map" {
		t.Fatalf("row order: %v / %v", tdbRow[0], isoRow[0])
	}
	tdbDeath := parse(t, tdbRow[1])
	isoDeath := parse(t, isoRow[1])
	// Iso-Map's first battery death comes much later (Fig. 16's per-round
	// gap compounds into endurance).
	if isoDeath != 0 && tdbDeath != 0 && isoDeath < tdbDeath*5 {
		t.Errorf("Iso-Map first death %v not well beyond TinyDB %v", isoDeath, tdbDeath)
	}
	tdbUnusable := parse(t, tdbRow[3])
	isoUnusable := parse(t, isoRow[3])
	if tdbUnusable == 0 {
		t.Error("TinyDB should wear out within the round budget")
	}
	if isoUnusable != 0 && isoUnusable < tdbUnusable*5 {
		t.Errorf("Iso-Map unusable at %v, TinyDB at %v — lifetime gain too small", isoUnusable, tdbUnusable)
	}
}
