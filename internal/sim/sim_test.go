package sim

import (
	"strings"
	"testing"
)

func TestBuildDefaults(t *testing.T) {
	env, err := Build(Scenario{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if env.Network.Len() != 2500 {
		t.Errorf("default nodes = %d, want 2500", env.Network.Len())
	}
	if env.Scenario.Radio != 1.5 {
		t.Errorf("default radio = %v, want 1.5", env.Scenario.Radio)
	}
	if env.Query.Epsilon != 0.1 {
		t.Errorf("default epsilon = %v, want 0.1", env.Query.Epsilon)
	}
	if !env.Scenario.Regulate {
		t.Error("regulation should default on")
	}
	// Connectivity: nearly all nodes routable.
	if env.Tree.ReachableCount() < 2400 {
		t.Errorf("reachable = %d of 2500", env.Tree.ReachableCount())
	}
}

func TestBuildRadioScalesWithDensity(t *testing.T) {
	env, err := Build(Scenario{Nodes: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Density 0.16 => radio 1.5/0.4 = 3.75.
	if got := env.Scenario.Radio; got < 3.74 || got > 3.76 {
		t.Errorf("radio = %v, want 3.75", got)
	}
	if env.Tree.ReachableCount() < 380 {
		t.Errorf("sparse deployment disconnected: %d of 400", env.Tree.ReachableCount())
	}
}

func TestBuildGrid(t *testing.T) {
	env, err := Build(Scenario{Grid: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if env.Network.Len() != 2500 {
		t.Errorf("grid nodes = %d", env.Network.Len())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Scenario{Nodes: -5}); err == nil {
		t.Error("want error for negative node count")
	}
}

func TestRunAllProtocolsOnce(t *testing.T) {
	gridEnv, err := Build(Scenario{Nodes: 900, FieldSide: 30, Grid: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	randEnv, err := Build(Scenario{Nodes: 900, FieldSide: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	iso, m, err := randEnv.RunIsoMap()
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || iso.Protocol != "Iso-Map" {
		t.Fatal("bad Iso-Map result")
	}
	tdb, res, err := gridEnv.RunTinyDB()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || tdb.Protocol != "TinyDB" {
		t.Fatal("bad TinyDB result")
	}
	inl, err := gridEnv.RunINLR()
	if err != nil {
		t.Fatal(err)
	}
	esc, err := randEnv.RunEScan()
	if err != nil {
		t.Fatal(err)
	}
	sup, err := gridEnv.RunSuppress()
	if err != nil {
		t.Fatal(err)
	}

	// Headline orderings of the paper:
	// 1. Iso-Map generates far fewer reports than the all-nodes-report
	// protocols; data suppression reduces generation by the (constant)
	// 2-hop degree factor, so at this scale only a strict ordering holds.
	for _, other := range []Stats{tdb, inl, esc} {
		if iso.Generated*2 >= other.Generated {
			t.Errorf("Iso-Map generated %d vs %s %d — should be far fewer",
				iso.Generated, other.Protocol, other.Generated)
		}
	}
	if iso.Generated >= sup.Generated {
		t.Errorf("Iso-Map generated %d vs Suppression %d — should be fewer",
			iso.Generated, sup.Generated)
	}
	// 2. Iso-Map's traffic is the lowest of the Fig. 14 trio.
	if iso.TrafficKB >= tdb.TrafficKB || iso.TrafficKB >= inl.TrafficKB {
		t.Errorf("Iso-Map traffic %v KB not below TinyDB %v / INLR %v",
			iso.TrafficKB, tdb.TrafficKB, inl.TrafficKB)
	}
	// 3. INLR computation dominates TinyDB and Iso-Map (Fig. 15a).
	if inl.MeanOps <= tdb.MeanOps || inl.MeanOps <= iso.MeanOps {
		t.Errorf("INLR ops %v not above TinyDB %v / Iso-Map %v",
			inl.MeanOps, tdb.MeanOps, iso.MeanOps)
	}
	// 4. Iso-Map's per-node energy is the lowest (Fig. 16).
	if iso.MeanEnergyJ >= tdb.MeanEnergyJ || iso.MeanEnergyJ >= inl.MeanEnergyJ {
		t.Errorf("Iso-Map energy %v not below TinyDB %v / INLR %v",
			iso.MeanEnergyJ, tdb.MeanEnergyJ, inl.MeanEnergyJ)
	}
	// 5. Both mapping protocols produce usable maps.
	if iso.Accuracy < 0.7 || tdb.Accuracy < 0.7 {
		t.Errorf("accuracies too low: iso %v tinydb %v", iso.Accuracy, tdb.Accuracy)
	}
}

func TestTableString(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow(1.5, "zz")
	tb.AddRow(-1.0, 7)
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "1.5") {
		t.Errorf("render missing content:\n%s", s)
	}
	if !strings.Contains(s, "-") {
		t.Error("-1 sentinel should render as '-'")
	}
}
