package sim

import "testing"

func TestExtCodecSweep(t *testing.T) {
	tb, err := ExtCodecSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	exact, paper, compact := tb.Rows[0], tb.Rows[1], tb.Rows[2]
	// The paper's 2-byte format is indistinguishable from exact floats.
	if d := parse(t, paper[3]) - parse(t, exact[3]); d < -0.01 || d > 0.01 {
		t.Errorf("2-byte accuracy %s differs from exact %s", paper[3], exact[3])
	}
	// The compact format halves the traffic...
	if parse(t, compact[2])*1.9 > parse(t, paper[2]) {
		t.Errorf("compact traffic %s not ~half of %s", compact[2], paper[2])
	}
	// ...at no more than a small accuracy cost.
	if parse(t, compact[3]) < parse(t, paper[3])-0.05 {
		t.Errorf("compact accuracy %s collapsed vs %s", compact[3], paper[3])
	}
}
