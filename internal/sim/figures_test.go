package sim

import (
	"strconv"
	"testing"
)

// parse reads a rendered cell back as a float.
func parse(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestFig7ErrorDropsWithDegree(t *testing.T) {
	tb, err := Fig7GradientError(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	first := parse(t, tb.Rows[0][2])
	last := parse(t, tb.Rows[len(tb.Rows)-1][2])
	if last >= first {
		t.Errorf("gradient error did not drop with degree: %v -> %v", first, last)
	}
	// At degree >= 7 (radio 1.5+) the paper reports small errors; allow
	// our surface a slack margin.
	for _, row := range tb.Rows {
		deg := parse(t, row[1])
		mean := parse(t, row[2])
		if deg >= 7 && mean > 15 {
			t.Errorf("degree %v has mean error %v degrees — too high", deg, mean)
		}
	}
}

func TestFig13FilteringMonotone(t *testing.T) {
	tb, err := Fig13aFilterReports()
	if err != nil {
		t.Fatal(err)
	}
	// Rows are ordered sa-major, sd-minor: within one sa block, higher sd
	// must not increase sink reports.
	var prevSa, prevReports float64
	first := true
	for _, row := range tb.Rows {
		sa := parse(t, row[0])
		rep := parse(t, row[2])
		if !first && sa == prevSa && rep > prevReports {
			t.Errorf("sa=%v: reports grew with sd: %v -> %v", sa, prevReports, rep)
		}
		prevSa, prevReports, first = sa, rep, false
	}
}

func TestFig14aIsoMapWinsEverywhere(t *testing.T) {
	tb, err := Fig14aTrafficDiameter()
	if err != nil {
		t.Fatal(err)
	}
	var prevIso float64
	for i, row := range tb.Rows {
		tdbKB := parse(t, row[3])
		inlKB := parse(t, row[4])
		isoKB := parse(t, row[5])
		if isoKB >= tdbKB || isoKB >= inlKB {
			t.Errorf("row %d: Iso-Map %v KB not below TinyDB %v / INLR %v", i, isoKB, tdbKB, inlKB)
		}
		if i > 0 && isoKB < prevIso/2 {
			t.Errorf("row %d: Iso-Map traffic dropped sharply with size: %v -> %v", i, prevIso, isoKB)
		}
		prevIso = isoKB
	}
	// TinyDB traffic grows much faster than Iso-Map's across the sweep.
	firstRatio := parse(t, tb.Rows[0][3]) / parse(t, tb.Rows[0][5])
	lastRatio := parse(t, tb.Rows[len(tb.Rows)-1][3]) / parse(t, tb.Rows[len(tb.Rows)-1][5])
	if lastRatio <= firstRatio {
		t.Errorf("TinyDB/Iso-Map traffic ratio did not widen: %v -> %v", firstRatio, lastRatio)
	}
}

func TestFig15bIsoMapComputeFlat(t *testing.T) {
	tb, err := Fig15bComputeIsoMap()
	if err != nil {
		t.Fatal(err)
	}
	first := parse(t, tb.Rows[0][2])
	last := parse(t, tb.Rows[len(tb.Rows)-1][2])
	// Per-node intensity stays constant-ish (paper: does not grow with
	// network size). Allow 2x wiggle for the small-field end.
	if last > first*2 && last > 100 {
		t.Errorf("Iso-Map per-node ops grew with size: %v -> %v", first, last)
	}
}

func TestFig16EnergyOrdering(t *testing.T) {
	tb, err := Fig16Energy()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tb.Rows {
		tdbJ := parse(t, row[2])
		inlJ := parse(t, row[3])
		isoJ := parse(t, row[4])
		if isoJ >= tdbJ || isoJ >= inlJ {
			t.Errorf("row %d: Iso-Map energy %v not lowest (TinyDB %v, INLR %v)", i, isoJ, tdbJ, inlJ)
		}
	}
	// TinyDB/INLR per-node energy grows with size while Iso-Map stays
	// nearly flat (Fig. 16).
	tdbGrowth := parse(t, tb.Rows[len(tb.Rows)-1][2]) / parse(t, tb.Rows[0][2])
	isoGrowth := parse(t, tb.Rows[len(tb.Rows)-1][4]) / parse(t, tb.Rows[0][4])
	if tdbGrowth <= isoGrowth {
		t.Errorf("TinyDB energy growth %v should exceed Iso-Map's %v", tdbGrowth, isoGrowth)
	}
}

func TestTable1Measured(t *testing.T) {
	tb, err := Table1Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	// Iso-Map's measured generated reports must be far below the
	// all-nodes-report protocols (rows 0-2) and below suppression (row 3,
	// whose reduction is only a constant degree factor).
	iso := parse(t, tb.Rows[4][4])
	for i := 0; i < 3; i++ {
		other := parse(t, tb.Rows[i][4])
		if iso*2 >= other {
			t.Errorf("Iso-Map reports %v vs %s %v — should be far fewer", iso, tb.Rows[i][0], other)
		}
	}
	if sup := parse(t, tb.Rows[3][4]); iso >= sup {
		t.Errorf("Iso-Map reports %v vs Suppression %v — should be fewer", iso, sup)
	}
}

func TestFig10ReportCountsDropWithFiltering(t *testing.T) {
	tb, err := Fig10Maps(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Received reports stay within the same order of magnitude across a
	// 25x density change (the paper: 112 / 89 / 49) — filtering absorbs
	// the density growth.
	high := parse(t, tb.Rows[0][4])
	low := parse(t, tb.Rows[2][4])
	if low <= 0 || high <= 0 {
		t.Fatalf("degenerate report counts %v %v", high, low)
	}
	if high/low > 12 {
		t.Errorf("report counts scale with density too strongly: %v vs %v", high, low)
	}
	// Accuracy at density 4 beats accuracy at density 0.16 for both.
	if parse(t, tb.Rows[0][2]) <= parse(t, tb.Rows[2][2]) {
		t.Errorf("TinyDB accuracy not improving with density")
	}
	if parse(t, tb.Rows[0][3]) <= parse(t, tb.Rows[2][3]) {
		t.Errorf("Iso-Map accuracy not improving with density")
	}
}
