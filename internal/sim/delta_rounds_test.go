package sim

import (
	"reflect"
	"testing"

	"isomap/internal/field"
)

func newDeltaSource(t *testing.T, r *Runner, seed int64, faultEvery int) *RoundSource {
	t.Helper()
	src := newRoundSource(t, r, seed, faultEvery)
	dyn, err := field.NewTemporal("drift", src.Env.Field, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	src.Dyn = dyn
	src.Delta = true
	src.DeltaExpiry = 3
	return src
}

// TestRoundSourceDelta drives the delta protocol through the RoundSource
// path: every round runs the packet engine, the served batch is the aged
// belief (so it never collapses to one round's crossings), the telemetry
// is populated, and two same-seed sources emit byte-identical streams —
// faulted rounds included.
func TestRoundSourceDelta(t *testing.T) {
	r := NewRunner(1)
	a := newDeltaSource(t, r, 3, 3)
	b := newDeltaSource(t, r, 3, 3)
	sawFault, crossed, suppressed := false, false, false
	for round := 0; round < 5; round++ {
		ra, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("round %d diverged between same-seed delta sources (faulted=%v)", round+1, ra.Faulted)
		}
		if len(ra.Reports) == 0 {
			t.Fatalf("round %d served an empty belief", ra.Round)
		}
		if ra.Delta == nil {
			t.Fatalf("round %d carries no delta telemetry", ra.Round)
		}
		if ra.Delta.MapReports != len(ra.Reports) {
			t.Fatalf("round %d: MapReports=%d but %d reports served",
				ra.Round, ra.Delta.MapReports, len(ra.Reports))
		}
		if ra.DataFrames == 0 {
			t.Fatalf("round %d moved no data frames", ra.Round)
		}
		sawFault = sawFault || ra.Faulted
		crossed = crossed || ra.Delta.Crossings > 0
		suppressed = suppressed || ra.Delta.Suppressed > 0
	}
	if !sawFault {
		t.Error("FaultEvery=3 produced no faulted delta round in 5")
	}
	if !crossed || !suppressed {
		t.Errorf("delta path unexercised: crossed=%v suppressed=%v", crossed, suppressed)
	}
}

// TestRoundSourceDeltaSharded: the delta stream must be byte-identical
// on the sharded engine — cross-round DeltaState evolution included.
func TestRoundSourceDeltaSharded(t *testing.T) {
	r := NewRunner(1)
	seq := newDeltaSource(t, r, 3, 2)
	sharded := newDeltaSource(t, r, 3, 2)
	sharded.Shards = 4
	sharded.Workers = 4
	for round := 0; round < 4; round++ {
		ra, err := seq.Next()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := sharded.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("round %d diverged from sequential (faulted=%v)", ra.Round, ra.Faulted)
		}
	}
}

// TestRoundSourceDeltaSeekReplay pins the delta checkpoint-restore
// contract: SeekRound replays rounds 1..n from reset protocol state, so
// a fresh same-seed source seeked to n continues the continuous stream
// byte-identically — source-side memory, aged belief and expiry clocks
// all aligned.
func TestRoundSourceDeltaSeekReplay(t *testing.T) {
	r := NewRunner(1)
	cont := newDeltaSource(t, r, 5, 2)
	var stream []*RoundData
	for round := 0; round < 5; round++ {
		rd, err := cont.Next()
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, rd)
	}
	for _, seek := range []int{0, 2, 4} {
		re := newDeltaSource(t, r, 5, 2)
		if err := re.SeekRound(seek); err != nil {
			t.Fatal(err)
		}
		if re.Round() != seek {
			t.Fatalf("Round() after SeekRound(%d) = %d", seek, re.Round())
		}
		for i := seek; i < len(stream); i++ {
			rd, err := re.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rd, stream[i]) {
				t.Fatalf("seek %d: round %d diverged from continuous stream (faulted=%v)",
					seek, stream[i].Round, stream[i].Faulted)
			}
		}
	}
	// Seeking an already-advanced source must also reset cleanly.
	again := newDeltaSource(t, r, 5, 2)
	for round := 0; round < 3; round++ {
		if _, err := again.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := again.SeekRound(1); err != nil {
		t.Fatal(err)
	}
	rd, err := again.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rd, stream[1]) {
		t.Fatal("re-seek after advancing diverged from continuous stream")
	}
}

// TestExtTemporalSweepTable runs the full default grid once through the
// table form — the cmd/experiments ext-temporal surface — and checks the
// grid covers both protocols and that full cells mark the delta-only
// metrics n/a.
func TestExtTemporalSweepTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full temporal grid")
	}
	tb, err := NewRunner(0).ExtTemporalSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "ext-temporal" {
		t.Errorf("table ID %q", tb.ID)
	}
	points := DefaultTemporalPoints()
	if len(tb.Rows) != len(points) {
		t.Fatalf("%d rows for %d grid points", len(tb.Rows), len(points))
	}
	modes := map[string]int{}
	for i, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(tb.Columns))
		}
		modes[row[2]]++
		if !points[i].Delta && (row[7] != "-" || row[9] != "-") {
			t.Errorf("full row %d carries delta-only metrics: %v", i, row)
		}
	}
	if modes["full"] == 0 || modes["delta"] == 0 {
		t.Errorf("grid does not cover both protocols: %v", modes)
	}
}

// TestTemporalSweepSmoke runs the single-cell CI grid end to end and
// sanity-checks the metric ranges.
func TestTemporalSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-round packet sweep")
	}
	results, err := NewRunner(2).ExtTemporalSweepResults(1, SmokeTemporalPoints())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	res := results[0]
	if res.DataFramesPerRound <= 0 || res.TxBytesPerRound <= 0 {
		t.Errorf("no traffic measured: %+v", res)
	}
	if res.TrackingError < 0 || res.TrackingError > 1 {
		t.Errorf("tracking error %g outside [0, 1]", res.TrackingError)
	}
	if res.MeanStaleness < 0 {
		t.Errorf("delta cell reported n/a staleness: %+v", res)
	}
	if res.MapReports <= 0 {
		t.Errorf("empty served belief: %+v", res)
	}
}
