package sim

import (
	"fmt"

	"isomap/internal/baseline/tinydb"
	"isomap/internal/core"
	"isomap/internal/energy"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// LifetimeResult traces a network running one protocol round after round
// on a fixed per-node battery until it wears out.
type LifetimeResult struct {
	Protocol string
	// FirstDeathRound is the round at which the first node exhausted its
	// battery (1-based); 0 when it never happened within MaxRounds.
	FirstDeathRound int
	// TenPercentRound is the round at which 10% of nodes were dead.
	TenPercentRound int
	// UnusableRound is the round at which fewer than half the surviving
	// nodes could still reach the sink.
	UnusableRound int
	// RoundsRun is how many rounds executed.
	RoundsRun int
}

// lifetimeConfig bounds the endurance run.
const (
	lifetimeMaxRounds = 400
	// lifetimeBatteryJ is a deliberately small battery so depletion
	// patterns emerge within hundreds of rounds: about the energy of
	// a half hour of Mica2 radio activity. Real AA budgets (~10 kJ) scale all
	// round counts linearly and equally for every protocol.
	lifetimeBatteryJ = 0.5
)

// runLifetime executes rounds of a protocol until the network wears out.
// roundCost runs one round over the (possibly degraded) tree and returns
// the per-round counters.
func runLifetime(name string, env *Env, roundCost func(*routing.Tree) (*metrics.Counters, error)) (*LifetimeResult, error) {
	nw := env.Network
	sink := env.Tree.Root()
	consumed := make([]float64, nw.Len())
	res := &LifetimeResult{Protocol: name}
	tree := env.Tree
	for round := 1; round <= lifetimeMaxRounds; round++ {
		res.RoundsRun = round
		c, err := roundCost(tree)
		if err != nil {
			return nil, fmt.Errorf("sim: lifetime round %d: %w", round, err)
		}
		dead := 0
		for i := 0; i < nw.Len(); i++ {
			id := network.NodeID(i)
			consumed[i] += energy.NodeJoules(c, id)
			if id == sink {
				continue // the sink is mains-powered
			}
			if consumed[i] >= lifetimeBatteryJ && !nw.Node(id).Failed {
				nw.Node(id).Failed = true
			}
			if nw.Node(id).Failed {
				dead++
			}
		}
		if dead > 0 && res.FirstDeathRound == 0 {
			res.FirstDeathRound = round
		}
		if dead*10 >= nw.Len() && res.TenPercentRound == 0 {
			res.TenPercentRound = round
		}
		// Rebuild the routing tree over the survivors.
		tree, err = routing.NewTree(nw, sink)
		if err != nil {
			res.UnusableRound = round
			return res, nil
		}
		alive := nw.Len() - dead
		if tree.ReachableCount()*2 < alive {
			res.UnusableRound = round
			return res, nil
		}
	}
	return res, nil
}

// ExtLifetimeSweep runs TinyDB and Iso-Map to exhaustion on identical
// batteries: the endurance counterpart of Fig. 16's per-round energy.
func ExtLifetimeSweep() (*Table, error) { return defaultRunner().ExtLifetimeSweep() }

// ExtLifetimeSweep is the Runner form of the package-level function; the
// two endurance sessions run as independent jobs. Lifetime runs mutate
// node failure state round after round, which is safe exactly because
// each Build hands out an isolated clone of the cached deployment.
func (r *Runner) ExtLifetimeSweep() (*Table, error) {
	t := &Table{
		ID:    "ext-lifetime",
		Title: "Network lifetime on a fixed battery (rounds; 0 = never within 400)",
		Columns: []string{
			"protocol", "first death", "10% dead", "unusable", "rounds run",
		},
	}
	results, err := runJobs(r, 2, func(i int) (*LifetimeResult, error) {
		if i == 0 {
			gridEnv, err := r.Build(Scenario{Grid: true, Seed: 1})
			if err != nil {
				return nil, err
			}
			return runLifetime("TinyDB", gridEnv, func(tree *routing.Tree) (*metrics.Counters, error) {
				res, err := tinydb.Run(tree, gridEnv.Field)
				if err != nil {
					return nil, err
				}
				return res.Counters, nil
			})
		}
		randEnv, err := r.Build(Scenario{Seed: 1})
		if err != nil {
			return nil, err
		}
		return runLifetime("Iso-Map", randEnv, func(tree *routing.Tree) (*metrics.Counters, error) {
			res, err := core.Run(tree, randEnv.Field, randEnv.Query, *randEnv.Scenario.Filter)
			if err != nil {
				return nil, err
			}
			return res.Counters, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for _, lr := range results {
		t.AddRow(lr.Protocol, lr.FirstDeathRound, lr.TenPercentRound, lr.UnusableRound, lr.RoundsRun)
	}
	return t, nil
}
