package isomap_test

import (
	"testing"

	"isomap"
)

func TestMapFieldQuickstart(t *testing.T) {
	f := isomap.DefaultSeabed()
	levels := isomap.Levels{Low: 6, High: 12, Step: 2}
	m, res, err := isomap.MapField(f, 2500, 1.5, 1, levels)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("no reports")
	}
	truth := isomap.TruthRaster(f, levels, 100, 100)
	if acc := isomap.Accuracy(truth, m.Raster(100, 100)); acc < 0.8 {
		t.Errorf("quickstart accuracy = %v, want > 0.8", acc)
	}
}

func TestExplicitPipeline(t *testing.T) {
	f := isomap.DefaultSeabed()
	nw, err := isomap.DeployUniform(1600, f, 1.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := isomap.NewTreeAtCenter(nw)
	if err != nil {
		t.Fatal(err)
	}
	q, err := isomap.NewQuery(isomap.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := isomap.Run(tree, f, q, isomap.DefaultFilter())
	if err != nil {
		t.Fatal(err)
	}
	m := isomap.Reconstruct(res.Reports, q.Levels, f, res.SinkValue)
	if got := m.ClassifyPoint(isomap.Point{X: 25, Y: 25}); got < 0 {
		t.Errorf("ClassifyPoint = %d", got)
	}
}

func TestNoFilterDeliversEverything(t *testing.T) {
	f := isomap.DefaultSeabed()
	nw, err := isomap.DeployUniform(900, f, 2.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := isomap.NewTreeAtCenter(nw)
	if err != nil {
		t.Fatal(err)
	}
	q, err := isomap.NewQuery(isomap.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	all, err := isomap.Run(tree, f, q, isomap.NoFilter())
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := isomap.Run(tree, f, q, isomap.DefaultFilter())
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered.Reports) > len(all.Reports) {
		t.Errorf("filtered (%d) > unfiltered (%d)", len(filtered.Reports), len(all.Reports))
	}
}

func TestDeployGridExported(t *testing.T) {
	f := isomap.DefaultSeabed()
	nw, err := isomap.DeployGrid(2500, f, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Len() != 2500 {
		t.Errorf("Len = %d", nw.Len())
	}
}

func TestNewTreeAtCenterAllFailed(t *testing.T) {
	f := isomap.DefaultSeabed()
	nw, err := isomap.DeployUniform(10, f, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw.FailFraction(1.0, 1)
	if _, err := isomap.NewTreeAtCenter(nw); err == nil {
		t.Error("want error when every node failed")
	}
}
