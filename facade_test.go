package isomap_test

import (
	"strings"
	"testing"

	"isomap"
)

func TestFacadeFieldConstructors(t *testing.T) {
	cfg := isomap.DefaultSeabedConfig()
	cfg.Seed = 5
	f := isomap.NewSeabed(cfg)
	x0, y0, x1, y1 := f.Bounds()
	if x1-x0 != 50 || y1-y0 != 50 {
		t.Errorf("bounds = %v %v %v %v", x0, y0, x1, y1)
	}
	if v := f.Value(25, 25); v <= 0 {
		t.Errorf("Value = %v", v)
	}
}

func TestFacadeQueryEpsilon(t *testing.T) {
	q, err := isomap.NewQueryEpsilon(isomap.Levels{Low: 6, High: 12, Step: 2}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if q.Epsilon != 0.4 {
		t.Errorf("Epsilon = %v", q.Epsilon)
	}
	if _, err := isomap.NewQueryEpsilon(isomap.Levels{}, 0.4); err == nil {
		t.Error("want error for empty levels")
	}
}

func TestFacadeRendering(t *testing.T) {
	f := isomap.DefaultSeabed()
	levels := isomap.Levels{Low: 6, High: 12, Step: 2}
	ra := isomap.TruthRaster(f, levels, 12, 12)
	art := isomap.RenderASCII(ra)
	if len(strings.Split(strings.TrimRight(art, "\n"), "\n")) != 12 {
		t.Errorf("ASCII render has wrong height:\n%s", art)
	}
	side := isomap.RenderSideBySide(ra, ra, "L", "R")
	if !strings.Contains(side, "L") || !strings.Contains(side, " | ") {
		t.Error("side-by-side render malformed")
	}
}

func TestFacadeMonitorSession(t *testing.T) {
	f := isomap.DefaultSeabed()
	nw, err := isomap.DeployUniform(900, f, 2.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := isomap.NewTreeAtCenter(nw)
	if err != nil {
		t.Fatal(err)
	}
	q, err := isomap.NewQuery(isomap.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := isomap.NewMonitor(tree, q, isomap.DefaultFilter())
	if err != nil {
		t.Fatal(err)
	}
	dyn := isomap.DefaultSilting(f)
	st1, err := mon.Round(dyn.At(0))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := mon.Round(dyn.At(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if st1.Round != 0 || st2.Round != 1 {
		t.Errorf("round numbering %d, %d", st1.Round, st2.Round)
	}
	if st2.Suppressed == 0 {
		t.Error("slow drift should suppress repeats")
	}
	// Custom config path.
	mon2, err := isomap.NewMonitorWithConfig(tree, isomap.MonitorConfig{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon2.Round(f); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRegions(t *testing.T) {
	f := isomap.DefaultSeabed()
	levels := isomap.Levels{Low: 6, High: 12, Step: 2}
	ra := isomap.TruthRaster(f, levels, 64, 64)

	alarm := isomap.RegionsBelow(ra, 1)
	deep := isomap.RegionsAtLeast(ra, 3)
	custom := isomap.Regions(ra, func(class int) bool { return class == 2 })
	if len(deep) == 0 || len(custom) == 0 {
		t.Errorf("regions: alarm=%d deep=%d custom=%d", len(alarm), len(deep), len(custom))
	}
	changes := isomap.TrackRegions(deep, deep)
	for _, ch := range changes {
		if ch.Kind.String() != "stable" {
			t.Errorf("self-tracking produced %v", ch.Kind)
		}
	}
}

func TestFacadeNoFilter(t *testing.T) {
	fc := isomap.NoFilter()
	if fc.Enabled {
		t.Error("NoFilter should be disabled")
	}
}

func TestFacadeNewTreeExplicitSink(t *testing.T) {
	f := isomap.DefaultSeabed()
	nw, err := isomap.DeployGrid(100, f, 10)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := isomap.NewTree(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root() != 0 {
		t.Errorf("Root = %d", tree.Root())
	}
}

func TestFacadeRunEdgeBased(t *testing.T) {
	f := isomap.DefaultSeabed()
	nw, err := isomap.DeployUniform(900, f, 2.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := isomap.NewTreeAtCenter(nw)
	if err != nil {
		t.Fatal(err)
	}
	q, err := isomap.NewQuery(isomap.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := isomap.RunEdgeBased(tree, f, q, isomap.DefaultFilter())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("edge-based round delivered nothing")
	}
	m := isomap.Reconstruct(res.Reports, q.Levels, f, res.SinkValue)
	truth := isomap.TruthRaster(f, q.Levels, 64, 64)
	if acc := isomap.Accuracy(truth, m.Raster(64, 64)); acc < 0.75 {
		t.Errorf("edge-based accuracy = %v", acc)
	}
}

func TestFacadeConfusion(t *testing.T) {
	f := isomap.DefaultSeabed()
	levels := isomap.Levels{Low: 6, High: 12, Step: 2}
	m, _, err := isomap.MapField(f, 2500, 1.5, 1, levels)
	if err != nil {
		t.Fatal(err)
	}
	truth := isomap.TruthRaster(f, levels, 96, 96)
	conf := isomap.NewConfusion(truth, m.Raster(96, 96))
	if conf == nil {
		t.Fatal("nil confusion")
	}
	if acc := conf.Accuracy(); acc < 0.8 {
		t.Errorf("confusion accuracy = %v", acc)
	}
	// Iso-Map's errors are dominated by boundary displacement: mostly
	// off-by-one band confusions.
	if obo := conf.OffByOne(); obo < 0.8 {
		t.Errorf("off-by-one share = %v — errors should be boundary slip", obo)
	}
}
