package isomap

import (
	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/events"
	"isomap/internal/field"
	"isomap/internal/monitor"
)

// Extension types: continuous monitoring, time-varying fields and
// contour-event analysis (the paper's future-work directions).
type (
	// DynamicField is a time-varying scalar field.
	DynamicField = field.DynamicField
	// SiltingSeabed is a seabed with progressive silt deposition.
	SiltingSeabed = field.SiltingSeabed
	// Monitor drives periodic Iso-Map rounds with temporal suppression.
	Monitor = monitor.Monitor
	// MonitorConfig assembles a monitoring session.
	MonitorConfig = monitor.Config
	// TemporalConfig tunes cross-round report suppression.
	TemporalConfig = monitor.TemporalConfig
	// RoundStats summarizes one monitoring round.
	RoundStats = monitor.RoundStats
	// Region is a connected contour region extracted from a raster.
	Region = events.Region
	// Change describes a region's evolution between rounds.
	Change = events.Change
	// Confusion is a per-class confusion matrix between contour rasters.
	Confusion = field.Confusion
)

// NewConfusion builds the per-class confusion matrix between a truth and
// an estimated contour raster, refining the scalar Accuracy metric with
// per-band recall/precision and the off-by-one error share.
func NewConfusion(truth, estimate *Raster) *Confusion {
	return field.ConfusionMatrix(truth, estimate)
}

// DefaultSilting returns the experiment suite's silting scenario over a
// base seabed: a deposition band across the route with a 3x storm between
// t=4 and t=6.
func DefaultSilting(base Field) *SiltingSeabed { return field.DefaultSilting(base) }

// NewMonitor starts a continuous monitoring session over a routing tree
// with the default temporal suppression (repeat reports whose gradient
// rotated under 10 degrees stay silent).
func NewMonitor(tree *Tree, q Query, fc FilterConfig) (*Monitor, error) {
	return monitor.New(tree, monitor.Config{
		Query:    q,
		Filter:   fc,
		Temporal: monitor.DefaultTemporal(),
		Options:  contour.DefaultOptions(),
	})
}

// NewMonitorWithConfig starts a monitoring session with full control.
func NewMonitorWithConfig(tree *Tree, cfg MonitorConfig) (*Monitor, error) {
	return monitor.New(tree, cfg)
}

// Regions extracts the connected contour regions of a raster whose class
// satisfies pred (see RegionsBelow / RegionsAtLeast for common
// predicates), largest first.
func Regions(ra *Raster, pred func(class int) bool) []Region {
	return events.Components(ra, pred)
}

// RegionsBelow extracts the regions shallower than the k-th isolevel —
// alarm zones in the harbor application.
func RegionsBelow(ra *Raster, k int) []Region {
	return events.Components(ra, events.ClassBelow(k))
}

// RegionsAtLeast extracts the regions at or above the k-th isolevel.
func RegionsAtLeast(ra *Raster, k int) []Region {
	return events.Components(ra, events.ClassAtLeast(k))
}

// CorridorAtLeast reports whether a connected corridor of cells at or
// above the k-th isolevel crosses the raster from its left edge to its
// right edge — the navigability question for a ship needing that depth.
func CorridorAtLeast(ra *Raster, k int) bool {
	return events.SpansHorizontally(ra, events.ClassAtLeast(k))
}

// TrackRegions matches a round's regions against the previous round's and
// classifies each as appeared / disappeared / grew / shrank / stable.
func TrackRegions(prev, cur []Region) []Change { return events.Track(prev, cur) }

// RunEdgeBased executes a protocol round with the edge-based isoline-node
// election instead of Definition 3.1's border band: every radio edge that
// straddles an isolevel elects its closer endpoint, needing no epsilon.
// It improves sparse-deployment coverage markedly (see ext-detect in
// EXPERIMENTS.md).
func RunEdgeBased(tree *Tree, f Field, q Query, fc FilterConfig) (*Result, error) {
	tree.Network().Sense(f)
	return core.RunSensedWithDetector(tree, q, fc, core.DetectIsolineNodesEdgeBased)
}
