// Benchmarks for the extension experiments and substrates that go beyond
// the paper's figures: sensing noise, regression scope, lossy links,
// continuous monitoring, slotted scheduling and DV-hop localization.
package isomap_test

import (
	"testing"

	"isomap/internal/core"
	"isomap/internal/desim"
	"isomap/internal/localize"
	"isomap/internal/schedule"
	"isomap/internal/sim"
)

func BenchmarkExtNoiseSweep(b *testing.B) {
	benchTable(b, func() (*sim.Table, error) { return sim.ExtNoiseSweep(1) })
}

func BenchmarkExtScopeSweep(b *testing.B) {
	benchTable(b, func() (*sim.Table, error) { return sim.ExtScopeSweep(1) })
}

func BenchmarkExtLossSweep(b *testing.B) { benchTable(b, sim.ExtLossSweep) }

func BenchmarkExtMonitorRounds(b *testing.B) {
	benchTable(b, func() (*sim.Table, error) { return sim.ExtMonitorRounds(6) })
}

func BenchmarkExtLatencySweep(b *testing.B) { benchTable(b, sim.ExtLatencySweep) }

func BenchmarkExtLocalizeSweep(b *testing.B) {
	benchTable(b, func() (*sim.Table, error) { return sim.ExtLocalizeSweep(1) })
}

// BenchmarkDVHop measures one full localization pass on the reference
// deployment with 16 anchors.
func BenchmarkDVHop(b *testing.B) {
	env, err := sim.Build(sim.Scenario{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	anchors, err := localize.SpreadAnchors(env.Network, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := localize.DVHop(env.Network, anchors); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanEpoch measures the slotted-schedule derivation for a
// filtered Iso-Map round.
func BenchmarkPlanEpoch(b *testing.B) {
	env, err := sim.Build(sim.Scenario{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	env.Network.Sense(env.Field)
	generated := core.DetectIsolineNodes(env.Network, env.Query, nil)
	d := core.DeliverReportsDetailed(env.Tree, generated, core.DefaultFilterConfig(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schedule.PlanEpoch(env.Tree, d, core.ReportBytes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtMACSweep(b *testing.B) { benchTable(b, sim.ExtMACSweep) }

// BenchmarkPacketCollection measures one packet-level CSMA/CA collection
// of a filtered Iso-Map round at the reference size.
func BenchmarkPacketCollection(b *testing.B) {
	env, err := sim.Build(sim.Scenario{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	env.Network.Sense(env.Field)
	generated := core.DetectIsolineNodes(env.Network, env.Query, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := desim.CollectReports(env.Tree, generated, core.DefaultFilterConfig(), desim.DefaultRadioConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Delivered) == 0 {
			b.Fatal("nothing delivered")
		}
	}
}

func BenchmarkExtLifetimeSweep(b *testing.B) { benchTable(b, sim.ExtLifetimeSweep) }

// BenchmarkFullPacketRound measures an entire Iso-Map round (query flood,
// probes, regression, filtered convergecast) on the discrete-event radio.
func BenchmarkFullPacketRound(b *testing.B) {
	env, err := sim.Build(sim.Scenario{Nodes: 900, FieldSide: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := desim.RunFullRound(env.Tree, env.Field, env.Query, core.DefaultFilterConfig(), desim.DefaultRadioConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Delivered) == 0 {
			b.Fatal("nothing delivered")
		}
	}
}

func BenchmarkExtDetectPolicySweep(b *testing.B) {
	benchTable(b, func() (*sim.Table, error) { return sim.ExtDetectPolicySweep(1) })
}

func BenchmarkExtCodecSweep(b *testing.B) {
	benchTable(b, func() (*sim.Table, error) { return sim.ExtCodecSweep(1) })
}
