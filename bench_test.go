// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. 5). Each BenchmarkTable*/BenchmarkFig* target produces the
// corresponding series once per iteration; run a single full regeneration
// with:
//
//	go test -bench=. -benchmem
//
// The reported series themselves are printed by cmd/experiments; here the
// benchmarks measure the cost of regenerating them and keep every
// experiment path exercised under -bench.
package isomap_test

import (
	"math/rand"
	"testing"

	"isomap"
	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/sim"
)

// benchTable runs a figure generator once per iteration, failing the
// benchmark on error.
func benchTable(b *testing.B, fn func() (*sim.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1Overhead(b *testing.B) { benchTable(b, sim.Table1Overhead) }

func BenchmarkFig7GradientError(b *testing.B) {
	benchTable(b, func() (*sim.Table, error) { return sim.Fig7GradientError(1) })
}

func BenchmarkFig9ReportDensity(b *testing.B) { benchTable(b, sim.Fig9ReportDensity) }

func BenchmarkFig10Maps(b *testing.B) {
	benchTable(b, func() (*sim.Table, error) { return sim.Fig10Maps(1) })
}

func BenchmarkFig11aAccuracyDensity(b *testing.B) {
	benchTable(b, func() (*sim.Table, error) { return sim.Fig11aAccuracyDensity(1) })
}

func BenchmarkFig11bAccuracyFailures(b *testing.B) {
	benchTable(b, func() (*sim.Table, error) { return sim.Fig11bAccuracyFailures(1) })
}

func BenchmarkFig12aHausdorffDensity(b *testing.B) {
	benchTable(b, func() (*sim.Table, error) { return sim.Fig12aHausdorffDensity(1) })
}

func BenchmarkFig12bHausdorffFailures(b *testing.B) {
	benchTable(b, func() (*sim.Table, error) { return sim.Fig12bHausdorffFailures(1) })
}

// BenchmarkAllFiguresSequential and BenchmarkAllFiguresParallel regenerate
// the complete figure set on a fresh Runner per iteration (so no cache
// state leaks between iterations) at pool width 1 vs GOMAXPROCS. On a
// multi-core machine the parallel variant shows the worker-pool speedup;
// the outputs are byte-identical either way.
func BenchmarkAllFiguresSequential(b *testing.B) { benchAllFigures(b, 1) }
func BenchmarkAllFiguresParallel(b *testing.B)   { benchAllFigures(b, 0) }

func benchAllFigures(b *testing.B, parallel int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := sim.NewRunner(parallel).AllFigures(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkFig13aFilterReports(b *testing.B)  { benchTable(b, sim.Fig13aFilterReports) }
func BenchmarkFig13bFilterAccuracy(b *testing.B) { benchTable(b, sim.Fig13bFilterAccuracy) }
func BenchmarkFig14aTrafficDiameter(b *testing.B) {
	benchTable(b, sim.Fig14aTrafficDiameter)
}
func BenchmarkFig14bTrafficDensity(b *testing.B) { benchTable(b, sim.Fig14bTrafficDensity) }
func BenchmarkFig15aComputeCompare(b *testing.B) { benchTable(b, sim.Fig15aCompute) }
func BenchmarkFig15bComputeIsoMap(b *testing.B)  { benchTable(b, sim.Fig15bComputeIsoMap) }
func BenchmarkFig16Energy(b *testing.B)          { benchTable(b, sim.Fig16Energy) }

// --- Component micro-benchmarks ---

// BenchmarkProtocolRound measures one full Iso-Map round (sense, detect,
// regress, filter, deliver) on the reference 2,500-node deployment.
func BenchmarkProtocolRound(b *testing.B) {
	env, err := sim.Build(sim.Scenario{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(env.Tree, env.Field, env.Query, core.DefaultFilterConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconstruction measures the sink-side map generation from a
// fixed report set.
func BenchmarkReconstruction(b *testing.B) {
	env, err := sim.Build(sim.Scenario{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Run(env.Tree, env.Field, env.Query, core.DefaultFilterConfig())
	if err != nil {
		b.Fatal(err)
	}
	bounds := field.BoundsRect(env.Field)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := contour.Reconstruct(res.Reports, env.Query.Levels, bounds, res.SinkValue, contour.DefaultOptions())
		if m == nil {
			b.Fatal("nil map")
		}
	}
}

// BenchmarkGradientRegression measures the per-isoline-node local model
// fit at the paper's average degree (~7 neighbors).
func BenchmarkGradientRegression(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]core.Sample, 8)
	for i := range samples {
		p := geom.Point{X: rng.Float64() * 3, Y: rng.Float64() * 3}
		samples[i] = core.Sample{Pos: p, Value: 9 + 0.4*p.X - 0.2*p.Y}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GradientByRegression(samples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVoronoi measures the bounded Voronoi construction at the sink
// for a typical per-level report count.
func BenchmarkVoronoi(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	sites := make([]geom.Point, 100)
	for i := range sites {
		sites[i] = geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
	}
	bounds := geom.Rect(0, 0, 50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := geom.Voronoi(sites, bounds)
		if len(d.Cells) != len(sites) {
			b.Fatal("bad diagram")
		}
	}
}

// BenchmarkQuickstartAPI measures the one-call public API end to end.
func BenchmarkQuickstartAPI(b *testing.B) {
	f := isomap.DefaultSeabed()
	levels := isomap.Levels{Low: 6, High: 12, Step: 2}
	for i := 0; i < b.N; i++ {
		if _, _, err := isomap.MapField(f, 2500, 1.5, 1, levels); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationFilterOff quantifies the traffic cost of disabling
// in-network filtering (Sec. 3.5's trade-off).
func BenchmarkAblationFilterOff(b *testing.B) {
	fc := core.FilterConfig{Enabled: false}
	env, err := sim.Build(sim.Scenario{Seed: 1, Filter: &fc})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var kb float64
	for i := 0; i < b.N; i++ {
		st, _, err := env.RunIsoMap()
		if err != nil {
			b.Fatal(err)
		}
		kb = st.TrafficKB
	}
	b.ReportMetric(kb, "trafficKB")
}

// BenchmarkAblationRegulationOff quantifies the accuracy impact of
// skipping regulation Rules 1-2 at the sink.
func BenchmarkAblationRegulationOff(b *testing.B) {
	env, err := sim.Build(sim.Scenario{Seed: 1, Regulate: false, RegulateSet: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		st, _, err := env.RunIsoMap()
		if err != nil {
			b.Fatal(err)
		}
		acc = st.Accuracy
	}
	b.ReportMetric(acc*100, "accuracy%")
}

// BenchmarkAblationWideEpsilon quantifies the wide border-region setting
// (eps = 0.2T) the paper discusses for sparse deployments.
func BenchmarkAblationWideEpsilon(b *testing.B) {
	env, err := sim.Build(sim.Scenario{Seed: 1, Epsilon: 0.4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var gen int64
	for i := 0; i < b.N; i++ {
		st, _, err := env.RunIsoMap()
		if err != nil {
			b.Fatal(err)
		}
		gen = st.Generated
	}
	b.ReportMetric(float64(gen), "reports")
}
