module isomap

go 1.22
