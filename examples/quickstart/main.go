// Quickstart: map the contours of a sensed field in one call.
//
// Deploys 2,500 sensor nodes over the synthetic harbor seabed, runs one
// Iso-Map round (isoline-node detection, gradient regression, in-network
// filtering) and reconstructs the isobath contour map at the sink,
// printing it next to the ground truth.
package main

import (
	"fmt"
	"os"

	"isomap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	f := isomap.DefaultSeabed()
	levels := isomap.Levels{Low: 6, High: 12, Step: 2} // isobaths at 6, 8, 10, 12 m

	m, res, err := isomap.MapField(f, 2500 /* nodes */, 1.5 /* radio */, 1 /* seed */, levels)
	if err != nil {
		return err
	}

	fmt.Printf("isoline nodes appointed: %d\n", res.IsolineNodes)
	fmt.Printf("reports: %d generated, %d received after in-network filtering\n",
		res.Generated, len(res.Reports))
	fmt.Printf("traffic: %.1f KB across the whole network\n\n", res.Counters.TrafficKB())

	const resolution = 48
	truth := isomap.TruthRaster(f, levels, resolution, resolution)
	estimate := m.Raster(resolution, resolution)
	fmt.Println(isomap.RenderSideBySide(truth, estimate, "ground truth", "Iso-Map estimate"))
	fmt.Printf("mapping accuracy: %.1f%%\n", isomap.Accuracy(truth, estimate)*100)
	return nil
}
