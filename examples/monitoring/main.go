// Monitoring: continuous siltation surveillance with temporal suppression.
//
// The harbor administration needs the isobath map continuously, not once:
// silt accumulates slowly in calm weather and violently during storms
// (Sec. 2 recounts a storm that cut the route depth from 9.5 m to 5.7 m).
// This example runs a monitoring session over a silting seabed — one
// Iso-Map round per time step — with cross-round temporal suppression:
// isoline nodes whose situation has not changed stay silent, so the
// steady-state traffic falls far below even a fresh Iso-Map round.
//
// Alarm zones (depth under the 6 m isobath) are extracted from each
// round's map and tracked across rounds, flagging new and growing hazards
// as the storm hits.
package main

import (
	"fmt"
	"os"

	"isomap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "monitoring:", err)
		os.Exit(1)
	}
}

func run() error {
	base := isomap.DefaultSeabed()
	route := isomap.DefaultSilting(base) // storm between t=4 and t=6

	nw, err := isomap.DeployUniform(2500, base, 1.5, 7)
	if err != nil {
		return err
	}
	tree, err := isomap.NewTreeAtCenter(nw)
	if err != nil {
		return err
	}
	q, err := isomap.NewQuery(isomap.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		return err
	}
	mon, err := isomap.NewMonitor(tree, q, isomap.DefaultFilter())
	if err != nil {
		return err
	}

	fmt.Println(" t   new  suppr  retired  traffic(KB)  cum(KB)  alarm-area  events")
	var prevAlarms []isomap.Region
	for t := 0; t <= 8; t++ {
		st, err := mon.Round(route.At(float64(t)))
		if err != nil {
			return err
		}
		ra := st.Map.Raster(96, 96)
		alarms := isomap.RegionsBelow(ra, 1) // shallower than the 6 m isobath
		changes := isomap.TrackRegions(prevAlarms, alarms)
		summary := summarize(changes)
		prevAlarms = alarms

		alarmArea := 0.0
		for _, a := range alarms {
			alarmArea += a.AreaFraction
		}
		fmt.Printf("%2d   %3d  %5d  %7d  %11.1f  %7.1f  %9.1f%%  %s\n",
			t, st.Delivered, st.Suppressed, st.Retired,
			st.TrafficKB, st.CumulativeTrafficKB, alarmArea*100, summary)
	}
	fmt.Println("\n(the storm at t=4..6 triggers a burst of fresh reports and a")
	fmt.Println(" growing alarm zone; calm rounds cost a fraction of the first)")
	return nil
}

func summarize(changes []isomap.Change) string {
	counts := map[string]int{}
	for _, c := range changes {
		counts[c.Kind.String()]++
	}
	if len(counts) == 0 {
		return "-"
	}
	out := ""
	for _, k := range []string{"appeared", "grew", "shrank", "disappeared", "stable"} {
		if counts[k] > 0 {
			if out != "" {
				out += ", "
			}
			out += fmt.Sprintf("%d %s", counts[k], k)
		}
	}
	return out
}
