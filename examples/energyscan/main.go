// Energyscan: mapping the network's own residual energy.
//
// eScan — one of the baselines the Iso-Map paper compares against — was
// originally built to map the residual energy of the sensor network
// itself. This example combines both systems: it runs thirty Iso-Map
// contour-mapping rounds (draining batteries unevenly — relays near the
// sink work hardest), then treats the residual battery level as the
// sensed attribute and maps it, showing the energy crater forming around
// the sink.
//
// This example reaches into internal packages (eScan, counters, renderer)
// because it demonstrates the baseline substrate, not the public Iso-Map
// API; see examples/quickstart for the supported surface.
package main

import (
	"fmt"
	"math"
	"os"

	"isomap/internal/baseline/escan"
	"isomap/internal/core"
	"isomap/internal/energy"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/network"
	"isomap/internal/render"
	"isomap/internal/routing"
)

// batteryJoules is a deliberately small per-node budget so thirty rounds
// produce a visible depletion pattern.
const batteryJoules = 0.009

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "energyscan:", err)
		os.Exit(1)
	}
}

func run() error {
	seabed := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployUniform(2500, seabed, 1.5, 9)
	if err != nil {
		return err
	}
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		return err
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		return err
	}
	q, err := core.NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		return err
	}

	// Thirty contour-mapping rounds; accumulate each node's consumption.
	consumed := make([]float64, nw.Len())
	for round := 0; round < 30; round++ {
		res, err := core.Run(tree, seabed, q, core.DefaultFilterConfig())
		if err != nil {
			return err
		}
		for i := range consumed {
			consumed[i] += energy.NodeJoules(res.Counters, network.NodeID(i))
		}
	}

	// Residual battery fraction per node.
	residual := make([]float64, nw.Len())
	var worst float64 = 1
	for i := range residual {
		residual[i] = math.Max(0, 1-consumed[i]/batteryJoules)
		if residual[i] < worst {
			worst = residual[i]
		}
	}
	fmt.Printf("after 30 rounds: most-drained node at %.0f%% battery (sink region relays)\n\n",
		worst*100)

	// Map the residual energy with eScan: the network's own state becomes
	// the sensed attribute, in 10% bands.
	ef := &energyField{nw: nw, residual: residual}
	res, err := escan.Run(tree, ef, escan.Config{ValueTolerance: 0.1, AdjacencyDist: 1.5})
	if err != nil {
		return err
	}
	fmt.Printf("eScan aggregated %d nodes into %d (VALUE, COVERAGE) tuples\n",
		tree.ReachableCount(), len(res.Tuples))
	low := 0
	for _, tu := range res.Tuples {
		if tu.MaxVal < 0.5 {
			low += tu.Nodes
		}
	}
	fmt.Printf("%d nodes report under 50%% battery\n\n", low)

	// Render the residual-energy contour map (10 bands).
	levels := field.Levels{Low: 0.1, High: 0.9, Step: 0.1}
	ra := field.ClassifyRaster(ef, levels, 56, 56)
	fmt.Println("residual energy map (dark = drained, the crater sits at the sink):")
	fmt.Println(render.ASCII(invert(ra, levels.Count())))
	return nil
}

// energyField exposes residual energy as a Field: the value at any point
// is the residual fraction of the nearest alive node.
type energyField struct {
	nw       *network.Network
	residual []float64
}

func (ef *energyField) Value(x, y float64) float64 {
	id, err := ef.nw.NearestNode(geom.Point{X: x, Y: y})
	if err != nil {
		return 0
	}
	return ef.residual[id]
}

func (ef *energyField) Bounds() (x0, y0, x1, y1 float64) {
	bb := ef.nw.Bounds()
	return bb.BoundingBox()
}

// invert flips class indices so drained areas render dark.
func invert(ra *field.Raster, max int) *field.Raster {
	out := field.NewRaster(ra.Rows, ra.Cols)
	for r := range ra.Cells {
		for c := range ra.Cells[r] {
			out.Cells[r][c] = max - ra.Cells[r][c]
		}
	}
	return out
}
