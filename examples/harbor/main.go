// Harbor: the paper's motivating application (Sec. 2) — siltation
// monitoring of the Huanghua Harbor sea route.
//
// An echolocation sensor network floats over the sea route and Iso-Map
// builds an isobath contour map of the water depth. From the map the
// harbor administration derives, without cruising survey boats:
//
//   - the navigable area for ships of each tonnage class (deeper drafts
//     need deeper water), and
//   - alarm zones where depth fell below the safety threshold.
//
// A simulated storm then deposits silt on part of the route (the depth
// drops, as in the October 2003 event the paper recounts) and the map is
// rebuilt, showing the shrinking navigable area.
package main

import (
	"fmt"
	"math"
	"os"

	"isomap"
)

// shipClass describes a tonnage class and the water depth its draft needs.
type shipClass struct {
	name     string
	minDepth float64
}

var classes = []shipClass{
	{"light coasters (<5k t)", 6},
	{"bulk carriers (~20k t)", 8},
	{"large bulk (~35k t)", 10},
	{"capesize (>50k t)", 12},
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "harbor:", err)
		os.Exit(1)
	}
}

func run() error {
	seabed := isomap.DefaultSeabed()
	levels := isomap.Levels{Low: 6, High: 12, Step: 2}

	fmt.Println("=== calm weather survey ===")
	if err := survey(seabed, levels); err != nil {
		return err
	}

	fmt.Println("\n=== after storm siltation (silt bank deposited mid-route) ===")
	if err := survey(siltedField{base: seabed}, levels); err != nil {
		return err
	}
	return nil
}

// survey runs one Iso-Map round and reports navigability per ship class.
func survey(f isomap.Field, levels isomap.Levels) error {
	m, res, err := isomap.MapField(f, 2500, 1.5, 7, levels)
	if err != nil {
		return err
	}
	fmt.Printf("sensors reporting: %d isoline nodes, %d reports at sink, %.1f KB traffic\n",
		res.IsolineNodes, len(res.Reports), res.Counters.TrafficKB())

	// Integrate the reconstructed map: region index k means depth above
	// the k-th isolevel, i.e. navigable for classes needing <= that depth.
	const resolution = 96
	ra := m.Raster(resolution, resolution)
	counts := make([]int, levels.Count()+1)
	for _, row := range ra.Cells {
		for _, class := range row {
			counts[class]++
		}
	}
	total := float64(resolution * resolution)
	// Cumulative area at least as deep as each class requires, plus the
	// decisive question: does a continuous corridor of sufficient depth
	// still cross the route?
	values := levels.Values()
	for _, sc := range classes {
		idx := indexOfLevel(values, sc.minDepth)
		if idx < 0 {
			continue
		}
		area := 0
		for k := idx + 1; k < len(counts); k++ {
			area += counts[k]
		}
		passage := "PASSAGE OPEN"
		if !isomap.CorridorAtLeast(ra, idx+1) {
			passage = "NO THROUGH PASSAGE"
		}
		fmt.Printf("  %-26s navigable over %5.1f%% of the route area — %s\n",
			sc.name+":", 100*float64(area)/total, passage)
	}
	// Alarm zones: anywhere shallower than the 6 m isobath.
	fmt.Printf("  ALARM (depth < %g m):      %5.1f%% of the route area\n",
		values[0], 100*float64(counts[0])/total)
	return nil
}

func indexOfLevel(values []float64, level float64) int {
	for i, v := range values {
		if math.Abs(v-level) < 1e-9 {
			return i
		}
	}
	return -1
}

// siltedField overlays a storm-deposited silt bank on the base seabed: the
// depth shallows by up to 4 m in a band across the route, mimicking the
// 970,000 m^3 deposition event of Oct. 2003.
type siltedField struct {
	base isomap.Field
}

func (s siltedField) Value(x, y float64) float64 {
	depth := s.base.Value(x, y)
	// Gaussian silt bank centered on a diagonal band.
	d := (x + y - 55) / 8
	silt := 4 * math.Exp(-d*d)
	depth -= silt
	if depth < 0.5 {
		depth = 0.5
	}
	return depth
}

func (s siltedField) Bounds() (x0, y0, x1, y1 float64) { return s.base.Bounds() }
