// Failures: contour mapping under progressive node failures (Fig. 11b).
//
// Buoy-mounted sensors die — batteries drain, moorings snap in storms —
// and the contour map must degrade gracefully. This example kills a
// growing fraction of a 2,500-node deployment and tracks Iso-Map's mapping
// accuracy, illustrating the paper's observation that the map stays usable
// up to roughly 40% failures and collapses beyond.
package main

import (
	"fmt"
	"os"
	"strings"

	"isomap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failures:", err)
		os.Exit(1)
	}
}

func run() error {
	f := isomap.DefaultSeabed()
	levels := isomap.Levels{Low: 6, High: 12, Step: 2}
	truth := isomap.TruthRaster(f, levels, 96, 96)

	fmt.Println("failure ratio   reports@sink   accuracy")
	for _, fail := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		nw, err := isomap.DeployUniform(2500, f, 1.5, 11)
		if err != nil {
			return err
		}
		nw.FailFraction(fail, 42)

		tree, err := isomap.NewTreeAtCenter(nw)
		if err != nil {
			return err
		}
		q, err := isomap.NewQuery(levels)
		if err != nil {
			return err
		}
		res, err := isomap.Run(tree, f, q, isomap.DefaultFilter())
		if err != nil {
			return err
		}
		m := isomap.Reconstruct(res.Reports, levels, f, res.SinkValue)
		acc := isomap.Accuracy(truth, m.Raster(96, 96))

		bar := strings.Repeat("#", int(acc*40))
		fmt.Printf("   %4.0f%%          %4d        %5.1f%%  %s\n",
			fail*100, len(res.Reports), acc*100, bar)
	}
	fmt.Println("\n(accuracy above ~80% holds until a large fraction of the")
	fmt.Println(" network is dead; beyond ~40% failures the map is unusable,")
	fmt.Println(" matching Fig. 11b of the paper)")
	return nil
}
